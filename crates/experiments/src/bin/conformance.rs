//! Conformance front-end for the differential oracle.
//!
//! Replays every cached `.mltct` trace in a directory through
//! `mltc-oracle`'s [`DiffHarness`] across a matrix of engine
//! configurations (L2 off / 1 MB / 4 MB × clock / LRU / FIFO × TLB on/off,
//! plus eviction-stress, sector-off and fault-injected variants), exiting
//! nonzero if the optimized engine and the naive oracle disagree anywhere.
//! Divergences are delta-minimized and written as self-contained repro
//! JSON files.
//!
//! ```text
//! conformance [--traces <dir>] [--repros <dir>] [--render-tiny] [--filter <mode>]
//! ```
//!
//! `--render-tiny` first renders the tiny Village and City workloads into
//! the trace directory (via the shared trace store), so a cold CI checkout
//! can bootstrap its own inputs.

use mltc_core::{EngineConfig, FaultPlan, L1Config, L2Config, ReplacementPolicy};
use mltc_experiments::TraceStore;
use mltc_oracle::{expand_frame, DiffHarness, Repro, TexelAccess, TraceKey};
use mltc_raster::Traversal;
use mltc_scene::{Workload, WorkloadParams};
use mltc_trace::codec::TraceFileReader;
use mltc_trace::FilterMode;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: conformance [--traces <dir>] [--repros <dir>] [--render-tiny] [--filter <mode>]"
    );
    ExitCode::from(2)
}

/// The configuration matrix. Tiny traces never fill a 1 MB L2, so the
/// matrix adds 64 KB (64-block) variants where replacement actually runs,
/// a sector-off ablation, and one deterministic fault plan exercising the
/// retry/degrade paths.
fn matrix() -> Vec<(String, EngineConfig)> {
    let l1 = L1Config::kb(2);
    let base = EngineConfig {
        l1,
        l2: None,
        ..EngineConfig::default()
    };
    let mut out = Vec::new();
    for tlb in [0usize, 8] {
        out.push((
            format!("l2=off tlb={tlb}"),
            EngineConfig {
                l2: None,
                tlb_entries: tlb,
                ..base
            },
        ));
    }
    let policies = [
        ReplacementPolicy::Clock,
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
    ];
    for mb in [1usize, 4] {
        for policy in policies {
            for tlb in [0usize, 8] {
                out.push((
                    format!("l2={mb}MB policy={policy} tlb={tlb}"),
                    EngineConfig {
                        l2: Some(L2Config {
                            policy,
                            ..L2Config::mb(mb)
                        }),
                        tlb_entries: tlb,
                        ..base
                    },
                ));
            }
        }
    }
    for policy in policies {
        out.push((
            format!("l2=64KB policy={policy} tlb=8 (eviction stress)"),
            EngineConfig {
                l2: Some(L2Config {
                    size_bytes: 64 * 1024,
                    policy,
                    ..L2Config::mb(1)
                }),
                tlb_entries: 8,
                ..base
            },
        ));
    }
    out.push((
        "l2=64KB policy=clock sector=off tlb=8".into(),
        EngineConfig {
            l2: Some(L2Config {
                size_bytes: 64 * 1024,
                sector_mapping: false,
                ..L2Config::mb(1)
            }),
            tlb_entries: 8,
            ..base
        },
    ));
    out.push((
        "l2=64KB policy=clock tlb=8 fault=20%+burst".into(),
        EngineConfig {
            l2: Some(L2Config {
                size_bytes: 64 * 1024,
                ..L2Config::mb(1)
            }),
            tlb_entries: 8,
            fault: FaultPlan {
                burst_period: 11,
                burst_len: 3,
                ..FaultPlan::with_rate(0xc0f0_0d5eed, 200_000)
            },
            ..base
        },
    ));
    out
}

fn render_tiny(dir: &Path) {
    let store = TraceStore::persistent(dir);
    for workload in [
        Workload::village(&WorkloadParams::tiny()),
        Workload::city(&WorkloadParams::tiny()),
    ] {
        store.get_or_render(&workload, false, Traversal::Scanline);
    }
}

struct TraceInput {
    path: PathBuf,
    /// The rebuilt workload; owns the registry the stream indexes into.
    workload: Workload,
    stream: Vec<TexelAccess>,
}

fn load_trace(path: &Path, filter_override: Option<FilterMode>) -> Result<TraceInput, String> {
    let mut reader =
        TraceFileReader::new(BufReader::new(File::open(path).map_err(|e| e.to_string())?))
            .map_err(|e| format!("not a .mltct container: {e}"))?;
    let key = TraceKey::parse(reader.key())?;
    let workload = key.workload();
    let mut stream = Vec::new();
    for _ in 0..reader.frame_count() {
        let frame = reader.read_frame().map_err(|e| e.to_string())?;
        let filter = filter_override.unwrap_or(frame.filter);
        expand_frame(&frame, filter, workload.scene().registry(), &mut stream)
            .map_err(|e| e.to_string())?;
    }
    Ok(TraceInput {
        path: path.to_path_buf(),
        workload,
        stream,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut traces_dir = PathBuf::from("results/traces");
    let mut repros_dir = PathBuf::from("results/repros");
    let mut render = false;
    let mut filter_override = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--traces" => match it.next() {
                Some(d) => traces_dir = PathBuf::from(d),
                None => return usage(),
            },
            "--repros" => match it.next() {
                Some(d) => repros_dir = PathBuf::from(d),
                None => return usage(),
            },
            "--render-tiny" => render = true,
            "--filter" => match it.next().map(String::as_str) {
                Some("point") => filter_override = Some(FilterMode::Point),
                Some("bilinear") => filter_override = Some(FilterMode::Bilinear),
                Some("trilinear") => filter_override = Some(FilterMode::Trilinear),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    if render {
        render_tiny(&traces_dir);
    }

    let mut trace_paths: Vec<PathBuf> = match std::fs::read_dir(&traces_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "mltct"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read trace dir {}: {e}", traces_dir.display());
            return ExitCode::FAILURE;
        }
    };
    trace_paths.sort();
    if trace_paths.is_empty() {
        eprintln!(
            "no .mltct traces under {} (try --render-tiny)",
            traces_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let configs = matrix();
    let mut divergences = 0usize;
    let mut replays = 0usize;
    for path in trace_paths {
        let input = match load_trace(&path, filter_override) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                divergences += 1; // unreadable input fails the run too
                continue;
            }
        };
        let registry = input.workload.scene().registry();
        println!(
            "{}: {} accesses x {} configs",
            input.path.display(),
            input.stream.len(),
            configs.len()
        );
        for (label, cfg) in &configs {
            replays += 1;
            let harness = match DiffHarness::new(*cfg, registry) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("  {label}: invalid config: {e}");
                    divergences += 1;
                    continue;
                }
            };
            match harness.replay(&input.stream) {
                Ok(()) => println!("  {label}: ok"),
                Err(div) => {
                    divergences += 1;
                    let shrunk = harness.shrink(&input.stream);
                    let detail = harness
                        .replay(&shrunk)
                        .expect_err("shrunk stream still diverges")
                        .to_string();
                    let note = format!("{}: {label}: {detail}", input.path.display());
                    let repro = Repro::capture(&note, *cfg, registry, &shrunk);
                    match repro.write(&repros_dir) {
                        Ok(p) => eprintln!(
                            "  {label}: DIVERGENCE — {div}\n    shrunk to {} accesses, repro: {}",
                            shrunk.len(),
                            p.display()
                        ),
                        Err(e) => eprintln!(
                            "  {label}: DIVERGENCE — {div}\n    (failed to write repro: {e})"
                        ),
                    }
                }
            }
        }
    }

    if divergences == 0 {
        println!("conformance: {replays} replays, no divergences");
        ExitCode::SUCCESS
    } else {
        eprintln!("conformance: {divergences} divergence(s) across {replays} replays");
        ExitCode::FAILURE
    }
}
