//! Multi-client chaos and containment gate.
//!
//! Runs N phase-offset camera streams through one shared [`TextureService`]
//! under a bursty host link (2 of every 10 transfers fail, 3 attempts
//! each), optionally poisons one client (an injected worker panic or a
//! 100 %-failure fault plan), and then **gates** on the containment
//! contract:
//!
//! * the poisoned client must end up quarantined (exit 1 when it does
//!   not, or when anything *else* was quarantined or errored);
//! * with `--verify-containment` (partitioned mode), every survivor must
//!   be bit-identical to its solo baseline (exit 2 on any divergence).
//!
//! A machine-readable summary lands in `<out>/multiclient_chaos.json`;
//! `--telemetry <dir>` additionally exports the per-client scoped
//! recorders (counters, per-frame series, histograms).
//!
//! ```text
//! multiclient [--tiny|--quick|--default|--full] [--clients <n>]
//!             [--partition partitioned|unified] [--inject-panic <c>]
//!             [--fault-client <c>] [--verify-containment]
//!             [--out <dir>] [--telemetry <dir>]
//! ```

use mltc_core::{FaultPlan, L2PartitionMode, ServiceConfig};
use mltc_experiments::{
    collect_frames, experiment_service_config, run_multi_client, solo_baseline, ClientSpec,
    MultiClientConfig, Scale, TraceStore,
};
use mltc_telemetry::{export, Recorder};
use mltc_trace::FilterMode;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: multiclient [--tiny|--quick|--default|--full] [--clients <n>]\n\
         \x20                  [--partition partitioned|unified] [--inject-panic <c>]\n\
         \x20                  [--fault-client <c>] [--verify-containment]\n\
         \x20                  [--out <dir>] [--telemetry <dir>]\n\
         \n\
         --clients <n>         client population (default 8)\n\
         --partition <m>       L2 organisation (default partitioned)\n\
         --inject-panic <c>    panic client <c>'s worker before its frame 1\n\
         --fault-client <c>    give client <c> a 100%-failure host link\n\
         --verify-containment  diff every survivor against its solo baseline\n\
         --out <dir>           where the JSON summary goes (default results)\n\
         --telemetry <dir>     export per-client telemetry into <dir>"
    );
    ExitCode::from(64)
}

/// The chaos link: of every 10 transfers the first 2 fail all 3 attempts.
fn burst_plan() -> FaultPlan {
    FaultPlan {
        seed: 0x4d4c_5443,
        burst_period: 10,
        burst_len: 2,
        ..FaultPlan::none()
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() -> ExitCode {
    let mut scale = Scale::quick();
    let mut clients = 8usize;
    let mut partition = L2PartitionMode::Partitioned;
    let mut inject_panic: Option<usize> = None;
    let mut fault_client: Option<usize> = None;
    let mut verify_containment = false;
    let mut out_dir = "results".to_string();
    let mut telemetry_dir: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" | "--quick" | "--default" | "--full" => {
                scale = Scale::from_flag(&a).expect("known flag");
            }
            "--clients" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => clients = n,
                _ => return usage(),
            },
            "--partition" => match it.next().as_deref() {
                Some("partitioned") => partition = L2PartitionMode::Partitioned,
                Some("unified") => partition = L2PartitionMode::Unified,
                _ => return usage(),
            },
            "--inject-panic" => match it.next().and_then(|s| s.parse().ok()) {
                Some(c) => inject_panic = Some(c),
                None => return usage(),
            },
            "--fault-client" => match it.next().and_then(|s| s.parse().ok()) {
                Some(c) => fault_client = Some(c),
                None => return usage(),
            },
            "--verify-containment" => verify_containment = true,
            "--out" => match it.next() {
                Some(d) => out_dir = d,
                None => return usage(),
            },
            "--telemetry" => match it.next() {
                Some(d) => telemetry_dir = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "-h" | "--help" => return usage(),
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }
    if inject_panic.is_some_and(|c| c >= clients) || fault_client.is_some_and(|c| c >= clients) {
        eprintln!("poisoned client id outside population 0..{clients}");
        return usage();
    }

    println!(
        "# multiclient chaos — {} clients, {:?}, scale {}, burst 2/10",
        clients, partition, scale.name
    );
    let w = scale.village();
    let store = TraceStore::in_memory();
    let frames = match collect_frames(&store, &w) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace render failed: {e}");
            return ExitCode::from(3);
        }
    };
    let mut specs: Vec<ClientSpec> = (0..clients)
        .map(|i| ClientSpec {
            phase_offset: i * frames.len() / clients,
            ..ClientSpec::new(FilterMode::Bilinear)
        })
        .collect();
    if let Some(c) = inject_panic {
        specs[c].panic_at_frame = Some(1);
    }
    if let Some(c) = fault_client {
        specs[c].fault_override = Some(FaultPlan {
            max_attempts: 1,
            ..FaultPlan::with_rate(7, 1_000_000)
        });
    }
    let cfg = MultiClientConfig {
        service: ServiceConfig {
            fault: burst_plan(),
            ..experiment_service_config(partition)
        },
        ..MultiClientConfig::default()
    };
    let recorder = if telemetry_dir.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    if inject_panic.is_some() {
        // The injected panic is the point of the run — one line, not a
        // backtrace, so the gate output stays readable.
        std::panic::set_hook(Box::new(|info| eprintln!("worker panic: {info}")));
    }
    let report = match run_multi_client(w.registry(), &frames, &specs, &cfg, &recorder) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("service construction failed: {e}");
            return ExitCode::from(3);
        }
    };

    let mut gate_failures: Vec<String> = Vec::new();
    for c in &report.clients {
        let expected_poison = inject_panic == Some(c.id as usize);
        match (&c.quarantined, expected_poison) {
            (Some(q), true) => println!("client {}: quarantined as expected ({q})", c.id),
            (Some(q), false) => {
                gate_failures.push(format!("client {} unexpectedly quarantined: {q}", c.id))
            }
            (None, true) => {
                gate_failures.push(format!("client {} should have been quarantined", c.id))
            }
            (None, false) => {}
        }
        if let Some(e) = &c.error {
            gate_failures.push(format!("client {} errored: {e}", c.id));
        }
    }

    let mut divergent: Vec<u32> = Vec::new();
    if verify_containment {
        if partition == L2PartitionMode::Unified {
            println!("note: --verify-containment is a no-op in unified mode (shared state)");
        } else {
            for c in report.survivors() {
                match solo_baseline(w.registry(), &frames, &specs, &cfg, c.id as usize) {
                    Ok(solo) if solo.frames() == c.frames.as_slice() => {}
                    Ok(_) => divergent.push(c.id),
                    Err(e) => gate_failures.push(format!("solo baseline {} failed: {e}", c.id)),
                }
            }
            match divergent.as_slice() {
                [] => println!(
                    "containment verified: {} survivors bit-identical to solo baselines",
                    report.survivors().count()
                ),
                ids => gate_failures.push(format!("containment VIOLATED for clients {ids:?}")),
            }
        }
    }

    println!(
        "fairness {:.4}, contention {}/{} acquisitions, {} stalls",
        report.fairness,
        report.contention.contended,
        report.contention.acquisitions,
        report.clients.iter().map(|c| c.queue_stalls).sum::<u64>()
    );

    // Hand-rolled JSON summary (no serde in the workspace by design).
    let clients_json: Vec<String> = report
        .clients
        .iter()
        .map(|c| {
            format!(
                r#"{{"id":{},"frames":{},"local_rate":{:.6},"host_bytes":{},"denied":{},"shed_taps":{},"stalls":{},"quarantined":{}}}"#,
                c.id,
                c.frames.len(),
                c.local_rate(),
                c.totals.host_bytes,
                c.service.denied_transfers,
                c.service.shed_taps,
                c.queue_stalls,
                c.quarantined
                    .as_ref()
                    .map(|q| format!(r#""{}""#, json_escape(&q.to_string())))
                    .unwrap_or_else(|| "null".to_string()),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"clients\": {},\n  \"partition\": \"{:?}\",\n  \
         \"fairness\": {:.6},\n  \"contended\": {},\n  \"acquisitions\": {},\n  \
         \"quarantined\": {:?},\n  \"divergent\": {:?},\n  \"gate_failures\": [{}],\n  \
         \"client_reports\": [\n    {}\n  ]\n}}\n",
        scale.name,
        clients,
        partition,
        report.fairness,
        report.contention.contended,
        report.contention.acquisitions,
        report.quarantined_ids(),
        divergent,
        gate_failures
            .iter()
            .map(|f| format!(r#""{}""#, json_escape(f)))
            .collect::<Vec<_>>()
            .join(", "),
        clients_json.join(",\n    "),
    );
    let out_path = PathBuf::from(&out_dir).join("multiclient_chaos.json");
    if let Err(e) = std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&out_path, json))
    {
        eprintln!("failed to write {}: {e}", out_path.display());
        return ExitCode::from(3);
    }
    println!("summary: {}", out_path.display());

    if let Some(dir) = &telemetry_dir {
        if let Err(e) = export::export_dir(&recorder.snapshot(), dir) {
            eprintln!("telemetry export failed: {e}");
            return ExitCode::from(3);
        }
        println!("telemetry: {}", dir.display());
    }

    if !divergent.is_empty() {
        for f in &gate_failures {
            eprintln!("GATE: {f}");
        }
        return ExitCode::from(2);
    }
    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("GATE: {f}");
        }
        return ExitCode::from(1);
    }
    println!("gate: OK");
    ExitCode::SUCCESS
}
