//! Experiment runner binary.
//!
//! ```text
//! experiments <id>... [--quick|--default|--full] [--out <dir>]
//! experiments all [--default]
//! experiments list
//! ```

use mltc_experiments::{find_experiment, Outputs, Scale, EXPERIMENTS};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <id>... [--quick|--default|--full] [--out <dir>]\n\
         \n\
         ids: all, list, {}",
        EXPERIMENTS.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut scale = Scale::default_scale();
    let mut out_dir = "results".to_string();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" | "--default" | "--full" => {
                scale = Scale::from_flag(&a).expect("known flag");
            }
            "--out" => match it.next() {
                Some(d) => out_dir = d,
                None => return usage(),
            },
            "list" => {
                for (n, _) in EXPERIMENTS {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => return usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return usage();
    }

    let outputs = Outputs::new(&out_dir);
    println!(
        "# mltc experiments — scale: {} ({}x{})",
        scale.name, scale.params.width, scale.params.height
    );

    let run_list: Vec<&str> = if ids.iter().any(|i| i == "all") {
        EXPERIMENTS.iter().map(|(n, _)| *n).filter(|n| *n != "calibrate").collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    for id in run_list {
        match find_experiment(id) {
            Some(f) => {
                let start = std::time::Instant::now();
                println!("\n### running {id} ...");
                f(&scale, &outputs);
                println!("### {id} done in {:.1}s", start.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("unknown experiment: {id}");
                return usage();
            }
        }
    }
    ExitCode::SUCCESS
}
