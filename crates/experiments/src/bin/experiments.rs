//! Experiment runner binary.
//!
//! ```text
//! experiments <id>... [--tiny|--quick|--default|--full] [--out <dir>] [--no-store] [--expect-warm]
//! experiments all [--default]
//! experiments list
//! ```
//!
//! Rendered traces are memoized in a [`TraceStore`] persisted under
//! `<out>/traces/`: the first run at a given scale rasterizes each unique
//! animation once and later runs replay from disk without rasterizing at
//! all (`--expect-warm` turns that expectation into an exit code, for
//! CI). Per-experiment wall times and store throughput counters append to
//! `<out>/BENCH_experiments.json`. Delete `<out>/traces/` to force a
//! cold re-render (for example after changing the renderer).

use mltc_core::L2PartitionMode;
use mltc_experiments::{
    find_experiment, set_max_replay_jobs, set_multiclient_clients, set_multiclient_partition,
    Outputs, Scale, TraceStore, EXPERIMENTS,
};
use mltc_raster::Traversal;
use mltc_telemetry::{export, Recorder};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <id>... [--tiny|--quick|--default|--full] [--out <dir>] \
         [--no-store] [--expect-warm] [--jobs <n>] [--telemetry <dir>] \
         [--trace-events <file>] [--heartbeat <secs>]\n\
         \n\
         --no-store           do not persist traces under <out>/traces/\n\
         --expect-warm        fail if anything had to be rasterized (CI warm-run check)\n\
         --jobs <n>           replay at most <n> configurations concurrently\n\
         \x20                    (default: one per available core)\n\
         --telemetry <dir>    record spans/counters/histograms; export JSONL, CSV and\n\
         \x20                    summary JSON into <dir>\n\
         --trace-events <f>   write a chrome://tracing (Perfetto) trace-event file\n\
         --heartbeat <secs>   print store throughput every <secs> seconds\n\
         --clients <n>        pin the multiclient experiment to one population\n\
         --partition <m>      multiclient L2 mode: partitioned, unified or both\n\
         \n\
         ids: all, list, {}",
        EXPERIMENTS
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut scale = Scale::default_scale();
    let mut out_dir = "results".to_string();
    let mut persist = true;
    let mut expect_warm = false;
    let mut telemetry_dir: Option<PathBuf> = None;
    let mut trace_events: Option<PathBuf> = None;
    let mut heartbeat_secs: u64 = 0;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" | "--quick" | "--default" | "--full" => {
                scale = Scale::from_flag(&a).expect("known flag");
            }
            "--out" => match it.next() {
                Some(d) => out_dir = d,
                None => return usage(),
            },
            "--no-store" => persist = false,
            "--expect-warm" => expect_warm = true,
            "--jobs" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => set_max_replay_jobs(n),
                _ => return usage(),
            },
            "--telemetry" => match it.next() {
                Some(d) => telemetry_dir = Some(PathBuf::from(d)),
                None => return usage(),
            },
            "--trace-events" => match it.next() {
                Some(f) => trace_events = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--heartbeat" => match it.next().and_then(|s| s.parse().ok()) {
                Some(secs) => heartbeat_secs = secs,
                None => return usage(),
            },
            "--clients" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => set_multiclient_clients(n),
                _ => return usage(),
            },
            "--partition" => match it.next().as_deref() {
                Some("partitioned") => {
                    set_multiclient_partition(Some(L2PartitionMode::Partitioned))
                }
                Some("unified") => set_multiclient_partition(Some(L2PartitionMode::Unified)),
                Some("both") => set_multiclient_partition(None),
                _ => return usage(),
            },
            "list" => {
                for (n, _) in EXPERIMENTS {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => return usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return usage();
    }

    let outputs = Outputs::new(&out_dir);
    // One recorder for the whole suite: the store hands it to every run, so
    // engine counters, store spans and per-frame series all land in one
    // snapshot. Left disabled (a single not-taken branch per texel) unless
    // an export destination was asked for.
    let recorder = if telemetry_dir.is_some() || trace_events.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    let store = if persist {
        TraceStore::persistent(Path::new(&out_dir).join("traces"))
    } else {
        TraceStore::in_memory()
    }
    .with_recorder(recorder.clone());
    println!(
        "# mltc experiments — scale: {} ({}x{})",
        scale.name, scale.params.width, scale.params.height
    );
    let heartbeat = Heartbeat::start(&store, heartbeat_secs);

    let run_list: Vec<&str> = if ids.iter().any(|i| i == "all") {
        EXPERIMENTS
            .iter()
            .map(|(n, _)| *n)
            .filter(|n| *n != "calibrate")
            .collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    // One broken experiment must not take the suite down: failures (typed
    // errors and outright panics alike) are collected and reported at the
    // end, and the process exits nonzero.
    let suite_start = std::time::Instant::now();
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut timings: Vec<(String, f64)> = Vec::new();
    if let Some(first) = run_list.first() {
        prefetch_for(&store, &scale, first);
    }
    for (i, id) in run_list.iter().enumerate() {
        match find_experiment(id) {
            Some(f) => {
                // Overlap: while this experiment replays its (likely
                // cached) traces, the next experiment's uncached keys
                // render on background threads.
                if let Some(next) = run_list.get(i + 1) {
                    prefetch_for(&store, &scale, next);
                }
                let start = std::time::Instant::now();
                println!("\n### running {id} ...");
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    f(&scale, &outputs, &store)
                }));
                let secs = start.elapsed().as_secs_f64();
                timings.push((id.to_string(), secs));
                match outcome {
                    Ok(Ok(())) => {
                        println!("### {id} done in {secs:.1}s")
                    }
                    Ok(Err(e)) => {
                        eprintln!("### {id} FAILED: {e}");
                        failures.push((id.to_string(), e.to_string()));
                    }
                    Err(payload) => {
                        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = payload.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "non-string panic payload".to_string()
                        };
                        eprintln!("### {id} PANICKED: {msg}");
                        failures.push((id.to_string(), format!("panicked: {msg}")));
                    }
                }
            }
            None => {
                eprintln!("unknown experiment: {id}");
                return usage();
            }
        }
    }

    let wall = suite_start.elapsed().as_secs_f64();
    heartbeat.stop();
    let stats = store.snapshot();
    println!(
        "\n### trace store: {} renders ({} frames, {:.1} Mfrag/s), {} memory hits, \
         {} disk hits, {} healed, {:.1} Mtaps/s simulated",
        stats.renders,
        stats.frames_rendered,
        stats.fragments_per_sec() / 1e6,
        stats.mem_hits,
        stats.disk_hits,
        stats.healed_files,
        stats.taps_per_sec() / 1e6,
    );
    if stats.bytes_written + stats.bytes_read > 0 {
        println!(
            "### trace files: {:.1} MB written, {:.1} MB read, {} corrupt, {} stale",
            stats.bytes_written as f64 / 1e6,
            stats.bytes_read as f64 / 1e6,
            stats.corrupt_files,
            stats.stale_files,
        );
    }

    // Telemetry exports: one snapshot feeds every destination, so the
    // JSONL rows, the summary JSON and the bench record always agree.
    let telemetry_json = recorder.is_enabled().then(|| {
        let snap = recorder.snapshot();
        if let Some(dir) = &telemetry_dir {
            match export::export_dir(&snap, dir) {
                Ok(()) => println!("### telemetry: {}", dir.display()),
                Err(e) => eprintln!("could not export telemetry to {}: {e}", dir.display()),
            }
        }
        if let Some(file) = &trace_events {
            let written = std::fs::File::create(file).and_then(|f| {
                let mut w = std::io::BufWriter::new(f);
                export::write_chrome_trace(&snap, &mut w)
            });
            match written {
                Ok(()) => println!(
                    "### trace events: {} ({} spans, {} dropped) — load in chrome://tracing",
                    file.display(),
                    snap.spans.len(),
                    snap.dropped_spans
                ),
                Err(e) => eprintln!("could not write {}: {e}", file.display()),
            }
        }
        export::summaries_json(&snap)
    });
    let bench = Path::new(&out_dir).join("BENCH_experiments.json");
    if let Err(e) = append_bench_run(
        &bench,
        &scale,
        wall,
        &timings,
        &stats,
        telemetry_json.as_deref(),
    ) {
        eprintln!("could not write {}: {e}", bench.display());
    } else {
        println!("### bench report: {}", bench.display());
    }

    if expect_warm && stats.renders > 0 {
        eprintln!(
            "--expect-warm: store rasterized {} animation(s); expected 100% trace hits",
            stats.renders
        );
        return ExitCode::FAILURE;
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("\n{} experiment(s) failed:", failures.len());
        for (id, why) in &failures {
            eprintln!("  {id}: {why}");
        }
        ExitCode::FAILURE
    }
}

/// A periodic progress printer: every `secs` seconds a background thread
/// snapshots the trace store and reports cumulative throughput, so long
/// `--full` runs show signs of life. Disabled (no thread) when `secs` is 0.
struct Heartbeat {
    stop_tx: Option<std::sync::mpsc::Sender<()>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(store: &TraceStore, secs: u64) -> Self {
        if secs == 0 {
            return Heartbeat {
                stop_tx: None,
                handle: None,
            };
        }
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let store = store.clone();
        let start = std::time::Instant::now();
        let handle = std::thread::spawn(move || loop {
            match stop_rx.recv_timeout(Duration::from_secs(secs)) {
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    let s = store.snapshot();
                    eprintln!(
                        "### heartbeat {:>6.0}s: {} renders, {} frames, {:.1} Mfrag/s, \
                         {} mem hits, {} disk hits, {:.1} Mtaps/s",
                        start.elapsed().as_secs_f64(),
                        s.renders,
                        s.frames_rendered,
                        s.fragments_per_sec() / 1e6,
                        s.mem_hits,
                        s.disk_hits,
                        s.taps_per_sec() / 1e6,
                    );
                }
                Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            }
        });
        Heartbeat {
            stop_tx: Some(stop_tx),
            handle: Some(handle),
        }
    }

    fn stop(mut self) {
        if let Some(tx) = self.stop_tx.take() {
            let _ = tx.send(());
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Warms the store for one experiment: background threads render (or load)
/// the traces it is about to ask for.
fn prefetch_for(store: &TraceStore, scale: &Scale, id: &str) {
    let p = &scale.params;
    match id {
        // Analytic and snapshot experiments touch no traces.
        "fig3" | "table4" | "fig12" => {}
        "ablate-zprepass" => {
            store.prefetch(store.village(p), false, Traversal::Scanline);
            store.prefetch(store.city(p), false, Traversal::Scanline);
            store.prefetch(store.village(p), true, Traversal::Scanline);
            store.prefetch(store.city(p), true, Traversal::Scanline);
        }
        "ablate-traversal" => {
            store.prefetch(store.village(p), false, Traversal::Scanline);
            store.prefetch(store.village(p), false, Traversal::Tiled(8));
        }
        "future-workloads" => {
            store.prefetch(store.city(p), false, Traversal::Scanline);
            store.prefetch(store.future_city(p), false, Traversal::Scanline);
        }
        // Everything else replays the late-Z scanline animations.
        _ => {
            store.prefetch(store.village(p), false, Traversal::Scanline);
            store.prefetch(store.city(p), false, Traversal::Scanline);
        }
    }
}

/// Appends one run record to `BENCH_experiments.json`, a hand-rolled
/// `{"schema":1,"runs":[...]}` document (the repo has no JSON dependency).
fn append_bench_run(
    path: &Path,
    scale: &Scale,
    wall_seconds: f64,
    timings: &[(String, f64)],
    stats: &mltc_experiments::StoreStats,
    telemetry_json: Option<&str>,
) -> std::io::Result<()> {
    let mut run = format!(
        "{{\"scale\":\"{}\",\"wall_seconds\":{:.3},\"experiments\":[",
        scale.name, wall_seconds
    );
    for (i, (id, secs)) in timings.iter().enumerate() {
        if i > 0 {
            run.push(',');
        }
        run.push_str(&format!("{{\"id\":\"{id}\",\"seconds\":{secs:.3}}}"));
    }
    run.push_str(&format!(
        "],\"store\":{{\"renders\":{},\"mem_hits\":{},\"disk_hits\":{},\
         \"frames_rendered\":{},\"fragments_rasterized\":{},\
         \"fragments_per_sec\":{:.0},\"render_seconds\":{:.3},\
         \"taps_simulated\":{},\"taps_per_sec\":{:.0},\"sim_seconds\":{:.3},\
         \"bytes_written\":{},\"bytes_read\":{},\"corrupt_files\":{},\
         \"stale_files\":{},\"io_errors\":{},\"evictions\":{},\"spills\":{},\
         \"resident_bytes\":{},\"healed_files\":{}}}",
        stats.renders,
        stats.mem_hits,
        stats.disk_hits,
        stats.frames_rendered,
        stats.fragments_rasterized,
        stats.fragments_per_sec(),
        stats.render_nanos as f64 / 1e9,
        stats.taps_simulated,
        stats.taps_per_sec(),
        stats.sim_nanos as f64 / 1e9,
        stats.bytes_written,
        stats.bytes_read,
        stats.corrupt_files,
        stats.stale_files,
        stats.io_errors,
        stats.evictions,
        stats.spills,
        stats.resident_bytes,
        stats.healed_files,
    ));
    match telemetry_json {
        Some(summary) => run.push_str(&format!(",\"telemetry\":{summary}}}")),
        None => run.push('}'),
    }

    const HEAD: &str = "{\"schema\":1,\"runs\":[";
    const TAIL: &str = "]}";
    let content = match std::fs::read_to_string(path) {
        Ok(s) if s.starts_with(HEAD) && s.trim_end().ends_with(TAIL) => {
            let trimmed = s.trim_end();
            let body = &trimmed[..trimmed.len() - TAIL.len()];
            if body.ends_with('[') {
                format!("{body}{run}{TAIL}")
            } else {
                format!("{body},{run}{TAIL}")
            }
        }
        _ => format!("{HEAD}{run}{TAIL}"),
    };
    std::fs::write(path, content)
}
