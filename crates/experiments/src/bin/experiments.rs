//! Experiment runner binary.
//!
//! ```text
//! experiments <id>... [--quick|--default|--full] [--out <dir>]
//! experiments all [--default]
//! experiments list
//! ```

use mltc_experiments::{find_experiment, Outputs, Scale, EXPERIMENTS};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: experiments <id>... [--quick|--default|--full] [--out <dir>]\n\
         \n\
         ids: all, list, {}",
        EXPERIMENTS
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut scale = Scale::default_scale();
    let mut out_dir = "results".to_string();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" | "--default" | "--full" => {
                scale = Scale::from_flag(&a).expect("known flag");
            }
            "--out" => match it.next() {
                Some(d) => out_dir = d,
                None => return usage(),
            },
            "list" => {
                for (n, _) in EXPERIMENTS {
                    println!("{n}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => return usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        return usage();
    }

    let outputs = Outputs::new(&out_dir);
    println!(
        "# mltc experiments — scale: {} ({}x{})",
        scale.name, scale.params.width, scale.params.height
    );

    let run_list: Vec<&str> = if ids.iter().any(|i| i == "all") {
        EXPERIMENTS
            .iter()
            .map(|(n, _)| *n)
            .filter(|n| *n != "calibrate")
            .collect()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    // One broken experiment must not take the suite down: failures (typed
    // errors and outright panics alike) are collected and reported at the
    // end, and the process exits nonzero.
    let mut failures: Vec<(String, String)> = Vec::new();
    for id in run_list {
        match find_experiment(id) {
            Some(f) => {
                let start = std::time::Instant::now();
                println!("\n### running {id} ...");
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scale, &outputs)));
                match outcome {
                    Ok(Ok(())) => {
                        println!("### {id} done in {:.1}s", start.elapsed().as_secs_f64())
                    }
                    Ok(Err(e)) => {
                        eprintln!("### {id} FAILED: {e}");
                        failures.push((id.to_string(), e.to_string()));
                    }
                    Err(payload) => {
                        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = payload.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "non-string panic payload".to_string()
                        };
                        eprintln!("### {id} PANICKED: {msg}");
                        failures.push((id.to_string(), format!("panicked: {msg}")));
                    }
                }
            }
            None => {
                eprintln!("unknown experiment: {id}");
                return usage();
            }
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("\n{} experiment(s) failed:", failures.len());
        for (id, why) in &failures {
            eprintln!("  {id}: {why}");
        }
        ExitCode::FAILURE
    }
}
