//! Minimal 3D math substrate for the `mltc` texture-caching study.
//!
//! Provides exactly the linear algebra the software renderer needs: 2/3/4
//! component `f32` vectors, column-major 4×4 matrices, planes, axis-aligned
//! bounding boxes, and a view frustum for object-space visibility culling.
//!
//! # Example
//!
//! ```
//! use mltc_math::{Mat4, Vec3, Vec4};
//!
//! let model = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
//! let p = model.transform_point(Vec3::ZERO);
//! assert_eq!(p, Vec3::new(1.0, 0.0, 0.0));
//!
//! let clip = Mat4::perspective(60f32.to_radians(), 4.0 / 3.0, 0.1, 100.0);
//! let v = clip * Vec4::new(0.0, 0.0, -1.0, 1.0);
//! assert!(v.w > 0.0);
//! ```

mod aabb;
mod frustum;
mod mat4;
mod plane;
mod vec;

pub use aabb::Aabb;
pub use frustum::Frustum;
pub use mat4::Mat4;
pub use plane::Plane;
pub use vec::{Vec2, Vec3, Vec4};

/// Linear interpolation between `a` and `b` by factor `t`.
///
/// `t = 0` yields `a`, `t = 1` yields `b`; `t` is not clamped.
///
/// ```
/// assert_eq!(mltc_math::lerp(2.0, 4.0, 0.5), 3.0);
/// ```
#[inline]
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    a + (b - a) * t
}

/// Clamps `x` into `[lo, hi]`.
///
/// ```
/// assert_eq!(mltc_math::clamp(5.0, 0.0, 1.0), 1.0);
/// ```
#[inline]
pub fn clamp(x: f32, lo: f32, hi: f32) -> f32 {
    x.max(lo).min(hi)
}

/// Returns `true` if `a` and `b` differ by at most `eps`.
///
/// ```
/// assert!(mltc_math::approx_eq(1.0, 1.0 + 1e-7, 1e-5));
/// ```
#[inline]
pub fn approx_eq(a: f32, b: f32, eps: f32) -> bool {
    (a - b).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(-1.0, 3.0, 0.0), -1.0);
        assert_eq!(lerp(-1.0, 3.0, 1.0), 3.0);
    }

    #[test]
    fn lerp_midpoint() {
        assert_eq!(lerp(0.0, 10.0, 0.5), 5.0);
    }

    #[test]
    fn lerp_extrapolates() {
        assert_eq!(lerp(0.0, 1.0, 2.0), 2.0);
    }

    #[test]
    fn clamp_inside_and_outside() {
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
        assert_eq!(clamp(-3.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(9.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn approx_eq_respects_eps() {
        assert!(approx_eq(1.0, 1.001, 0.01));
        assert!(!approx_eq(1.0, 1.1, 0.01));
    }
}
