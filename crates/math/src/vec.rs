//! Fixed-size `f32` vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2-component `f32` vector, used for texture coordinates ⟨u,v⟩ and
/// screen-space positions.
///
/// ```
/// use mltc_math::Vec2;
/// let uv = Vec2::new(0.25, 0.75) * 2.0;
/// assert_eq!(uv, Vec2::new(0.5, 1.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f32,
    pub y: f32,
}

/// A 3-component `f32` vector, used for object- and world-space positions,
/// normals and colours.
///
/// ```
/// use mltc_math::Vec3;
/// assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

/// A 4-component `f32` vector, used for homogeneous clip-space positions.
///
/// ```
/// use mltc_math::{Vec3, Vec4};
/// let v = Vec4::from_point(Vec3::new(1.0, 2.0, 3.0));
/// assert_eq!(v.w, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub w: f32,
}

macro_rules! impl_binops {
    ($ty:ident, $($f:ident),+) => {
        impl Add for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self { Self { $($f: self.$f + rhs.$f),+ } }
        }
        impl Sub for $ty {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self { Self { $($f: self.$f - rhs.$f),+ } }
        }
        impl Mul<f32> for $ty {
            type Output = Self;
            #[inline]
            fn mul(self, s: f32) -> Self { Self { $($f: self.$f * s),+ } }
        }
        impl Mul<$ty> for f32 {
            type Output = $ty;
            #[inline]
            fn mul(self, v: $ty) -> $ty { v * self }
        }
        impl Div<f32> for $ty {
            type Output = Self;
            #[inline]
            fn div(self, s: f32) -> Self { Self { $($f: self.$f / s),+ } }
        }
        impl Neg for $ty {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self { Self { $($f: -self.$f),+ } }
        }
        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: Self) { *self = *self + rhs; }
        }
        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) { *self = *self - rhs; }
        }
        impl MulAssign<f32> for $ty {
            #[inline]
            fn mul_assign(&mut self, s: f32) { *self = *self * s; }
        }
        impl DivAssign<f32> for $ty {
            #[inline]
            fn div_assign(&mut self, s: f32) { *self = *self / s; }
        }
        impl $ty {
            /// Component-wise dot product.
            #[inline]
            pub fn dot(self, rhs: Self) -> f32 {
                let mut acc = 0.0;
                $(acc += self.$f * rhs.$f;)+
                acc
            }
            /// Euclidean length.
            #[inline]
            pub fn length(self) -> f32 { self.dot(self).sqrt() }
            /// Squared Euclidean length (avoids the square root).
            #[inline]
            pub fn length_squared(self) -> f32 { self.dot(self) }
            /// Returns the vector scaled to unit length.
            ///
            /// # Panics
            ///
            /// Panics in debug builds if the vector length is zero.
            #[inline]
            pub fn normalized(self) -> Self {
                let len = self.length();
                debug_assert!(len > 0.0, "cannot normalize a zero-length vector");
                self / len
            }
            /// Component-wise linear interpolation toward `rhs`.
            #[inline]
            pub fn lerp(self, rhs: Self, t: f32) -> Self {
                self + (rhs - self) * t
            }
            /// Component-wise minimum.
            #[inline]
            pub fn min(self, rhs: Self) -> Self { Self { $($f: self.$f.min(rhs.$f)),+ } }
            /// Component-wise maximum.
            #[inline]
            pub fn max(self, rhs: Self) -> Self { Self { $($f: self.$f.max(rhs.$f)),+ } }
        }
    };
}

impl_binops!(Vec2, x, y);
impl_binops!(Vec3, x, y, z);
impl_binops!(Vec4, x, y, z, w);

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Self = Self { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Creates a vector with both components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Self { x: v, y: v }
    }
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +X.
    pub const X: Self = Self {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along +Y.
    pub const Y: Self = Self {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along +Z.
    pub const Z: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// Creates a vector with all components set to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// Right-handed cross product.
    #[inline]
    pub fn cross(self, rhs: Self) -> Self {
        Self {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }
}

impl Vec4 {
    /// The zero vector.
    pub const ZERO: Self = Self {
        x: 0.0,
        y: 0.0,
        z: 0.0,
        w: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Homogeneous point (`w = 1`).
    #[inline]
    pub const fn from_point(p: Vec3) -> Self {
        Self {
            x: p.x,
            y: p.y,
            z: p.z,
            w: 1.0,
        }
    }

    /// Homogeneous direction (`w = 0`).
    #[inline]
    pub const fn from_dir(d: Vec3) -> Self {
        Self {
            x: d.x,
            y: d.y,
            z: d.z,
            w: 0.0,
        }
    }

    /// Drops the `w` component.
    #[inline]
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective divide: `(x/w, y/w, z/w)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `w` is zero.
    #[inline]
    pub fn project(self) -> Vec3 {
        debug_assert!(self.w != 0.0, "perspective divide by w = 0");
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.x, self.y, self.z, self.w)
    }
}

impl From<[f32; 2]> for Vec2 {
    fn from(a: [f32; 2]) -> Self {
        Self::new(a[0], a[1])
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<[f32; 4]> for Vec4 {
    fn from(a: [f32; 4]) -> Self {
        Self::new(a[0], a[1], a[2], a[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn vec3_cross_is_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn vec3_cross_anticommutes() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a.cross(b), -(b.cross(a)));
    }

    #[test]
    fn dot_of_orthogonal_is_zero() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
    }

    #[test]
    fn length_of_345_triangle() {
        assert_eq!(Vec2::new(3.0, 4.0).length(), 5.0);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(10.0, -3.0, 2.5).normalized();
        assert!(approx_eq(v.length(), 1.0, 1e-6));
    }

    #[test]
    fn vec4_project_divides_by_w() {
        let v = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(v.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn arithmetic_ops_are_componentwise() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, 5.0);
        assert_eq!(a + b, Vec2::new(4.0, 7.0));
        assert_eq!(b - a, Vec2::new(2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, 2.5));
    }

    #[test]
    fn assign_ops_match_binops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::splat(2.0);
        assert_eq!(v, Vec3::splat(3.0));
        v -= Vec3::splat(1.0);
        assert_eq!(v, Vec3::splat(2.0));
        v *= 3.0;
        assert_eq!(v, Vec3::splat(6.0));
        v /= 2.0;
        assert_eq!(v, Vec3::splat(3.0));
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, 3.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 3.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -1.0));
    }

    #[test]
    fn lerp_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn from_array_roundtrip() {
        assert_eq!(
            Vec4::from([1.0, 2.0, 3.0, 4.0]),
            Vec4::new(1.0, 2.0, 3.0, 4.0)
        );
    }

    #[test]
    fn homogeneous_constructors() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Vec4::from_point(p).w, 1.0);
        assert_eq!(Vec4::from_dir(p).w, 0.0);
        assert_eq!(Vec4::from_point(p).xyz(), p);
    }
}
