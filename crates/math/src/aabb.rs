//! Axis-aligned bounding boxes.

use crate::Vec3;

/// An axis-aligned bounding box, used for per-object frustum culling.
///
/// ```
/// use mltc_math::{Aabb, Vec3};
/// let b = Aabb::from_points([Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)]).unwrap();
/// assert_eq!(b.center(), Vec3::new(0.5, 1.0, 1.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any `min` component exceeds the
    /// corresponding `max` component.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(min.x <= max.x && min.y <= max.y && min.z <= max.z);
        Self { min, max }
    }

    /// Smallest box containing every point of the iterator, or `None` if the
    /// iterator is empty.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = Self {
            min: first,
            max: first,
        };
        for p in it {
            b.min = b.min.min(p);
            b.max = b.max.max(p);
        }
        Some(b)
    }

    /// Box center.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Half-extents along each axis.
    #[inline]
    pub fn half_extents(&self) -> Vec3 {
        (self.max - self.min) * 0.5
    }

    /// Returns the union of two boxes.
    pub fn union(&self, other: &Self) -> Self {
        Self {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Grows the box to contain `p`.
    pub fn expand(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Returns the 8 corner points.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_bounds_all() {
        let pts = [
            Vec3::new(1.0, -1.0, 0.0),
            Vec3::new(-2.0, 3.0, 5.0),
            Vec3::ZERO,
        ];
        let b = Aabb::from_points(pts).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Vec3::new(-2.0, -1.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 3.0, 5.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn union_contains_both() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(&b);
        assert!(u.contains(Vec3::splat(0.5)));
        assert!(u.contains(Vec3::splat(2.5)));
    }

    #[test]
    fn corners_are_distinct_and_contained() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let cs = b.corners();
        for (i, c) in cs.iter().enumerate() {
            assert!(b.contains(*c));
            for d in cs.iter().skip(i + 1) {
                assert_ne!(c, d);
            }
        }
    }

    #[test]
    fn expand_grows_bounds() {
        let mut b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        b.expand(Vec3::new(-5.0, 0.5, 2.0));
        assert!(b.contains(Vec3::new(-5.0, 0.5, 2.0)));
    }

    #[test]
    fn center_and_half_extents() {
        let b = Aabb::new(Vec3::new(-1.0, -2.0, -3.0), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.center(), Vec3::ZERO);
        assert_eq!(b.half_extents(), Vec3::new(1.0, 2.0, 3.0));
    }
}
