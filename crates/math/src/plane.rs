//! Planes in 3-space.

use crate::{Vec3, Vec4};

/// A plane `n·p + d = 0`, with the half-space `n·p + d >= 0` considered
/// "inside" (used by [`crate::Frustum`] culling).
///
/// ```
/// use mltc_math::{Plane, Vec3};
/// let floor = Plane::new(Vec3::Y, 0.0);
/// assert!(floor.signed_distance(Vec3::new(0.0, 2.0, 0.0)) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    /// Plane normal (not necessarily unit length unless normalized).
    pub normal: Vec3,
    /// Plane offset.
    pub d: f32,
}

impl Plane {
    /// Creates a plane from a normal and offset.
    #[inline]
    pub const fn new(normal: Vec3, d: f32) -> Self {
        Self { normal, d }
    }

    /// Creates a plane from homogeneous coefficients `(a, b, c, d)` where the
    /// plane equation is `ax + by + cz + d = 0`.
    #[inline]
    pub fn from_coefficients(v: Vec4) -> Self {
        Self {
            normal: v.xyz(),
            d: v.w,
        }
    }

    /// Returns the plane with its normal scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the normal is zero.
    pub fn normalized(self) -> Self {
        let len = self.normal.length();
        debug_assert!(len > 0.0, "cannot normalize a degenerate plane");
        Self {
            normal: self.normal / len,
            d: self.d / len,
        }
    }

    /// Signed distance of `p` from the plane (exact distance only when the
    /// plane is normalized; the sign is always meaningful).
    #[inline]
    pub fn signed_distance(&self, p: Vec3) -> f32 {
        self.normal.dot(p) + self.d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn signed_distance_sign() {
        let p = Plane::new(Vec3::Z, -1.0); // plane z = 1
        assert!(p.signed_distance(Vec3::new(0.0, 0.0, 2.0)) > 0.0);
        assert!(p.signed_distance(Vec3::ZERO) < 0.0);
        assert_eq!(p.signed_distance(Vec3::new(5.0, 5.0, 1.0)), 0.0);
    }

    #[test]
    fn normalization_preserves_zero_set() {
        let p = Plane::new(Vec3::new(0.0, 2.0, 0.0), -4.0); // plane y = 2
        let n = p.normalized();
        assert!(approx_eq(
            n.signed_distance(Vec3::new(1.0, 2.0, 3.0)),
            0.0,
            1e-6
        ));
        assert!(approx_eq(n.normal.length(), 1.0, 1e-6));
    }

    #[test]
    fn from_coefficients_matches_manual() {
        let p = Plane::from_coefficients(Vec4::new(1.0, 2.0, 3.0, 4.0));
        assert_eq!(p.normal, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(p.d, 4.0);
    }
}
