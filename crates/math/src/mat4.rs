//! Column-major 4×4 matrices.

use crate::{Vec3, Vec4};
use std::ops::Mul;

/// A column-major 4×4 `f32` matrix.
///
/// `cols[c]` is column `c`; the element at row `r`, column `c` is
/// `cols[c][r]`, matching OpenGL conventions. Points transform as column
/// vectors: `m * v`.
///
/// ```
/// use mltc_math::{Mat4, Vec3};
/// let m = Mat4::translation(Vec3::new(0.0, 1.0, 0.0)) * Mat4::scale(Vec3::splat(2.0));
/// assert_eq!(m.transform_point(Vec3::new(1.0, 0.0, 0.0)), Vec3::new(2.0, 1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    cols: [[f32; 4]; 4],
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        cols: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// Builds a matrix from column arrays.
    #[inline]
    pub const fn from_cols(cols: [[f32; 4]; 4]) -> Self {
        Self { cols }
    }

    /// Returns the element at `row`, `col`.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is 4 or more.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        self.cols[col][row]
    }

    /// Translation by `t`.
    pub fn translation(t: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.cols[3] = [t.x, t.y, t.z, 1.0];
        m
    }

    /// Non-uniform scale by `s`.
    pub fn scale(s: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.cols[0][0] = s.x;
        m.cols[1][1] = s.y;
        m.cols[2][2] = s.z;
        m
    }

    /// Rotation about the X axis by `angle` radians.
    pub fn rotation_x(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols([
            [1.0, 0.0, 0.0, 0.0],
            [0.0, c, s, 0.0],
            [0.0, -s, c, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ])
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn rotation_y(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols([
            [c, 0.0, -s, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [s, 0.0, c, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ])
    }

    /// Rotation about the Z axis by `angle` radians.
    pub fn rotation_z(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols([
            [c, s, 0.0, 0.0],
            [-s, c, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ])
    }

    /// Right-handed look-at view matrix (camera at `eye`, looking at
    /// `target`, with `up` roughly up). The camera looks down its local −Z.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `eye == target` or `up` is parallel to the
    /// view direction.
    pub fn look_at(eye: Vec3, target: Vec3, up: Vec3) -> Self {
        let f = (target - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Self::from_cols([
            [s.x, u.x, -f.x, 0.0],
            [s.y, u.y, -f.y, 0.0],
            [s.z, u.z, -f.z, 0.0],
            [-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0],
        ])
    }

    /// Right-handed perspective projection (OpenGL-style clip space,
    /// `z ∈ [-w, w]`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `near <= 0`, `far <= near`, `aspect <= 0` or
    /// `fov_y` is not in `(0, π)`.
    pub fn perspective(fov_y: f32, aspect: f32, near: f32, far: f32) -> Self {
        debug_assert!(near > 0.0 && far > near && aspect > 0.0);
        debug_assert!(fov_y > 0.0 && fov_y < std::f32::consts::PI);
        let f = 1.0 / (fov_y * 0.5).tan();
        Self::from_cols([
            [f / aspect, 0.0, 0.0, 0.0],
            [0.0, f, 0.0, 0.0],
            [0.0, 0.0, (far + near) / (near - far), -1.0],
            [0.0, 0.0, 2.0 * far * near / (near - far), 0.0],
        ])
    }

    /// Transforms a homogeneous vector.
    #[inline]
    pub fn transform(&self, v: Vec4) -> Vec4 {
        let c = &self.cols;
        Vec4::new(
            c[0][0] * v.x + c[1][0] * v.y + c[2][0] * v.z + c[3][0] * v.w,
            c[0][1] * v.x + c[1][1] * v.y + c[2][1] * v.z + c[3][1] * v.w,
            c[0][2] * v.x + c[1][2] * v.y + c[2][2] * v.z + c[3][2] * v.w,
            c[0][3] * v.x + c[1][3] * v.y + c[2][3] * v.z + c[3][3] * v.w,
        )
    }

    /// Transforms a point (`w = 1`) and drops the homogeneous coordinate
    /// without dividing (valid for affine matrices).
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.transform(Vec4::from_point(p)).xyz()
    }

    /// Transforms a direction (`w = 0`).
    #[inline]
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        self.transform(Vec4::from_dir(d)).xyz()
    }

    /// Matrix transpose.
    pub fn transposed(&self) -> Self {
        let mut out = Self::IDENTITY;
        for c in 0..4 {
            for r in 0..4 {
                out.cols[c][r] = self.cols[r][c];
            }
        }
        out
    }

    /// Returns the `i`-th row as a [`Vec4`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    #[inline]
    pub fn row(&self, i: usize) -> Vec4 {
        Vec4::new(
            self.cols[0][i],
            self.cols[1][i],
            self.cols[2][i],
            self.cols[3][i],
        )
    }
}

impl Mul for Mat4 {
    type Output = Self;

    fn mul(self, rhs: Self) -> Self {
        let mut out = Self::from_cols([[0.0; 4]; 4]);
        for c in 0..4 {
            for r in 0..4 {
                let mut acc = 0.0;
                for k in 0..4 {
                    acc += self.cols[k][r] * rhs.cols[c][k];
                }
                out.cols[c][r] = acc;
            }
        }
        out
    }
}

impl Mul<Vec4> for Mat4 {
    type Output = Vec4;

    #[inline]
    fn mul(self, v: Vec4) -> Vec4 {
        self.transform(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn assert_vec3_near(a: Vec3, b: Vec3) {
        assert!(
            approx_eq(a.x, b.x, 1e-5) && approx_eq(a.y, b.y, 1e-5) && approx_eq(a.z, b.z, 1e-5),
            "{a} != {b}"
        );
    }

    #[test]
    fn identity_is_noop() {
        let v = Vec4::new(1.0, -2.0, 3.0, 1.0);
        assert_eq!(Mat4::IDENTITY * v, v);
    }

    #[test]
    fn translation_moves_points_not_dirs() {
        let m = Mat4::translation(Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_point(Vec3::ZERO), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(m.transform_dir(Vec3::X), Vec3::X);
    }

    #[test]
    fn scale_scales() {
        let m = Mat4::scale(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(
            m.transform_point(Vec3::splat(1.0)),
            Vec3::new(2.0, 3.0, 4.0)
        );
    }

    #[test]
    fn rotation_y_quarter_turn() {
        let m = Mat4::rotation_y(std::f32::consts::FRAC_PI_2);
        assert_vec3_near(m.transform_dir(Vec3::X), -Vec3::Z);
        assert_vec3_near(m.transform_dir(Vec3::Z), Vec3::X);
    }

    #[test]
    fn rotation_x_quarter_turn() {
        let m = Mat4::rotation_x(std::f32::consts::FRAC_PI_2);
        assert_vec3_near(m.transform_dir(Vec3::Y), Vec3::Z);
    }

    #[test]
    fn rotation_z_quarter_turn() {
        let m = Mat4::rotation_z(std::f32::consts::FRAC_PI_2);
        assert_vec3_near(m.transform_dir(Vec3::X), Vec3::Y);
    }

    #[test]
    fn mul_composes_right_to_left() {
        let t = Mat4::translation(Vec3::new(1.0, 0.0, 0.0));
        let s = Mat4::scale(Vec3::splat(2.0));
        // (t * s) first scales then translates.
        let p = (t * s).transform_point(Vec3::new(1.0, 1.0, 1.0));
        assert_eq!(p, Vec3::new(3.0, 2.0, 2.0));
    }

    #[test]
    fn transpose_involution() {
        let m = Mat4::perspective(1.0, 1.5, 0.1, 100.0);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn look_at_centers_target_on_axis() {
        let eye = Vec3::new(0.0, 0.0, 5.0);
        let m = Mat4::look_at(eye, Vec3::ZERO, Vec3::Y);
        let v = m.transform_point(Vec3::ZERO);
        // Target lies straight ahead on the camera's -Z axis.
        assert_vec3_near(v, Vec3::new(0.0, 0.0, -5.0));
        // The eye maps to the origin.
        assert_vec3_near(m.transform_point(eye), Vec3::ZERO);
    }

    #[test]
    fn perspective_maps_near_far_to_unit_range() {
        let near = 0.5;
        let far = 50.0;
        let m = Mat4::perspective(1.0, 1.0, near, far);
        let pn = (m * Vec4::new(0.0, 0.0, -near, 1.0)).project();
        let pf = (m * Vec4::new(0.0, 0.0, -far, 1.0)).project();
        assert!(approx_eq(pn.z, -1.0, 1e-4), "near plane -> {}", pn.z);
        assert!(approx_eq(pf.z, 1.0, 1e-4), "far plane -> {}", pf.z);
    }

    #[test]
    fn perspective_w_equals_view_depth() {
        let m = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        let clip = m * Vec4::new(0.0, 0.0, -7.0, 1.0);
        assert!(approx_eq(clip.w, 7.0, 1e-5));
    }

    #[test]
    fn row_accessor_matches_at() {
        let m = Mat4::translation(Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(m.row(0).w, 4.0);
        assert_eq!(m.at(1, 3), 5.0);
    }
}
