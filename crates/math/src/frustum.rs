//! View-frustum extraction and culling.

use crate::{Aabb, Mat4, Plane};

/// A view frustum as six inward-facing planes, extracted from a combined
/// view-projection matrix (Gribb–Hartmann method).
///
/// Used for the object-space visibility culling stage of the renderer
/// (paper §3: the Intel Scene Manager "provides object-space visibility
/// culling").
///
/// ```
/// use mltc_math::{Aabb, Frustum, Mat4, Vec3};
/// let vp = Mat4::perspective(1.0, 1.0, 0.1, 100.0)
///     * Mat4::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y);
/// let f = Frustum::from_view_projection(&vp);
/// let visible = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
/// let behind = Aabb::new(Vec3::new(-1.0, -1.0, 50.0), Vec3::new(1.0, 1.0, 60.0));
/// assert!(f.intersects(&visible));
/// assert!(!f.intersects(&behind));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frustum {
    planes: [Plane; 6],
}

impl Frustum {
    /// Extracts the six frustum planes from a view-projection matrix.
    pub fn from_view_projection(vp: &Mat4) -> Self {
        let r0 = vp.row(0);
        let r1 = vp.row(1);
        let r2 = vp.row(2);
        let r3 = vp.row(3);
        let planes = [
            Plane::from_coefficients(r3 + r0).normalized(), // left
            Plane::from_coefficients(r3 - r0).normalized(), // right
            Plane::from_coefficients(r3 + r1).normalized(), // bottom
            Plane::from_coefficients(r3 - r1).normalized(), // top
            Plane::from_coefficients(r3 + r2).normalized(), // near
            Plane::from_coefficients(r3 - r2).normalized(), // far
        ];
        Self { planes }
    }

    /// The six planes in left/right/bottom/top/near/far order.
    pub fn planes(&self) -> &[Plane; 6] {
        &self.planes
    }

    /// Conservative AABB test: returns `false` only when the box is
    /// completely outside at least one plane (so it may return `true` for
    /// boxes slightly outside a frustum corner, which is safe for culling).
    pub fn intersects(&self, aabb: &Aabb) -> bool {
        let c = aabb.center();
        let h = aabb.half_extents();
        for p in &self.planes {
            let r = h.x * p.normal.x.abs() + h.y * p.normal.y.abs() + h.z * p.normal.z.abs();
            if p.signed_distance(c) < -r {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;

    fn test_frustum() -> Frustum {
        let vp = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 0.5, 100.0)
            * Mat4::look_at(Vec3::ZERO, -Vec3::Z * 10.0, Vec3::Y);
        Frustum::from_view_projection(&vp)
    }

    #[test]
    fn box_in_front_is_visible() {
        let f = test_frustum();
        let b = Aabb::new(Vec3::new(-1.0, -1.0, -11.0), Vec3::new(1.0, 1.0, -9.0));
        assert!(f.intersects(&b));
    }

    #[test]
    fn box_behind_camera_is_culled() {
        let f = test_frustum();
        let b = Aabb::new(Vec3::new(-1.0, -1.0, 9.0), Vec3::new(1.0, 1.0, 11.0));
        assert!(!f.intersects(&b));
    }

    #[test]
    fn box_beyond_far_plane_is_culled() {
        let f = test_frustum();
        let b = Aabb::new(Vec3::new(-1.0, -1.0, -300.0), Vec3::new(1.0, 1.0, -250.0));
        assert!(!f.intersects(&b));
    }

    #[test]
    fn box_far_to_the_side_is_culled() {
        let f = test_frustum();
        // 90° horizontal fov at z=-10 spans x in [-10, 10].
        let b = Aabb::new(Vec3::new(40.0, -1.0, -11.0), Vec3::new(42.0, 1.0, -9.0));
        assert!(!f.intersects(&b));
    }

    #[test]
    fn huge_box_straddling_frustum_is_visible() {
        let f = test_frustum();
        let b = Aabb::new(Vec3::splat(-1000.0), Vec3::splat(1000.0));
        assert!(f.intersects(&b));
    }

    #[test]
    fn near_plane_respected() {
        let f = test_frustum();
        let b = Aabb::new(Vec3::new(-0.1, -0.1, -0.3), Vec3::new(0.1, 0.1, -0.1));
        // Entirely between the eye and the near plane (z > -0.5).
        assert!(!f.intersects(&b));
    }
}
