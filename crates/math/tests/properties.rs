//! Property-based tests for the math substrate.

use mltc_math::{Aabb, Frustum, Mat4, Vec3, Vec4};
use proptest::prelude::*;

fn vec3s() -> impl Strategy<Value = Vec3> {
    (-100.0f32..100.0, -100.0f32..100.0, -100.0f32..100.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn near(a: f32, b: f32, eps: f32) -> bool {
    (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs()))
}

fn vec3_near(a: Vec3, b: Vec3, eps: f32) -> bool {
    near(a.x, b.x, eps) && near(a.y, b.y, eps) && near(a.z, b.z, eps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cross product is orthogonal to both inputs.
    #[test]
    fn cross_is_orthogonal(a in vec3s(), b in vec3s()) {
        let c = a.cross(b);
        let scale = a.length() * b.length();
        prop_assert!(c.dot(a).abs() <= 1e-3 * (1.0 + scale * a.length()));
        prop_assert!(c.dot(b).abs() <= 1e-3 * (1.0 + scale * b.length()));
    }

    /// |a×b|² + (a·b)² = |a|²|b|² (Lagrange's identity).
    #[test]
    fn lagrange_identity(a in vec3s(), b in vec3s()) {
        let lhs = a.cross(b).length_squared() + a.dot(b) * a.dot(b);
        let rhs = a.length_squared() * b.length_squared();
        prop_assert!(near(lhs, rhs, 1e-3), "{lhs} vs {rhs}");
    }

    /// Matrix multiplication composes transforms: (A*B)v = A(Bv).
    #[test]
    fn mat_mul_composes(t in vec3s(), s_exp in -2.0f32..2.0, angle in -3.1f32..3.1, p in vec3s()) {
        let a = Mat4::translation(t);
        let b = Mat4::rotation_y(angle) * Mat4::scale(Vec3::splat(2f32.powf(s_exp)));
        let lhs = (a * b).transform_point(p);
        let rhs = a.transform_point(b.transform_point(p));
        prop_assert!(vec3_near(lhs, rhs, 1e-4), "{lhs} vs {rhs}");
    }

    /// Translation then inverse translation is the identity.
    #[test]
    fn translation_inverts(t in vec3s(), p in vec3s()) {
        let round = Mat4::translation(-t).transform_point(Mat4::translation(t).transform_point(p));
        prop_assert!(vec3_near(round, p, 1e-5));
    }

    /// Rotations preserve length.
    #[test]
    fn rotations_are_isometries(angle in -6.3f32..6.3, p in vec3s()) {
        for m in [Mat4::rotation_x(angle), Mat4::rotation_y(angle), Mat4::rotation_z(angle)] {
            let q = m.transform_point(p);
            prop_assert!(near(q.length(), p.length(), 1e-4));
        }
    }

    /// An AABB built from points contains all of them, and its center lies
    /// inside it.
    #[test]
    fn aabb_contains_its_points(pts in proptest::collection::vec(vec3s(), 1..20)) {
        let bb = Aabb::from_points(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(*p));
        }
        prop_assert!(bb.contains(bb.center()));
    }

    /// Frustum culling is conservative: any point that projects inside the
    /// NDC cube implies its (point-sized) AABB intersects the frustum.
    #[test]
    fn frustum_never_culls_visible_points(p in vec3s()) {
        let vp = Mat4::perspective(1.0, 4.0 / 3.0, 0.1, 500.0)
            * Mat4::look_at(Vec3::new(0.0, 0.0, 120.0), Vec3::ZERO, Vec3::Y);
        let clip = vp * Vec4::from_point(p);
        if clip.w > 1e-3 {
            let ndc = clip.project();
            let inside = ndc.x.abs() <= 1.0 && ndc.y.abs() <= 1.0 && ndc.z.abs() <= 1.0;
            if inside {
                let f = Frustum::from_view_projection(&vp);
                let bb = Aabb::new(p - Vec3::splat(1e-3), p + Vec3::splat(1e-3));
                prop_assert!(f.intersects(&bb), "visible point {p} culled");
            }
        }
    }

    /// Homogeneous project/unproject: scaling a clip vector never changes
    /// its projection.
    #[test]
    fn projection_is_scale_invariant(p in vec3s(), k in 0.1f32..10.0) {
        let v = Vec4::new(p.x, p.y, p.z, 2.0);
        let scaled = Vec4::new(v.x * k, v.y * k, v.z * k, v.w * k);
        prop_assert!(vec3_near(v.project(), scaled.project(), 1e-4));
    }
}
