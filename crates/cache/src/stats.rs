//! Hit/miss accounting.

/// Running hit/miss counters with convenience rate accessors.
///
/// ```
/// let mut s = mltc_cache::HitStats::default();
/// s.record(true);
/// s.record(false);
/// assert_eq!(s.hit_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitStats {
    /// Total accesses observed.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
}

impl HitStats {
    /// Records one access.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.accesses += 1;
        self.hits += hit as u64;
    }

    /// Misses observed.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Hit rate in `[0, 1]`; zero accesses count as rate 0.
    #[inline]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss rate in `[0, 1]`; zero accesses count as rate 0.
    #[inline]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Accumulates another counter into this one.
    pub fn merge(&mut self, other: &HitStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
    }
}

/// Jain's fairness index over per-client allocations:
/// `(Σxᵢ)² / (n · Σxᵢ²)`, in `(0, 1]`. 1.0 means every client gets the
/// same share; `k/n` means `k` of `n` clients get everything. The standard
/// scalar for "did the shared L2 starve anyone" in multi-client runs.
/// Empty or all-zero inputs return 1.0 (nobody is being treated unequally).
pub fn jain_fairness(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rates_are_zero() {
        let s = HitStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
    }

    #[test]
    fn rates_sum_to_one() {
        let mut s = HitStats::default();
        for i in 0..10 {
            s.record(i % 3 == 0);
        }
        assert!((s.hit_rate() + s.miss_rate() - 1.0).abs() < 1e-12);
        assert_eq!(s.hits, 4);
        assert_eq!(s.misses(), 6);
    }

    #[test]
    fn merge_adds() {
        let mut a = HitStats {
            accesses: 10,
            hits: 5,
        };
        let b = HitStats {
            accesses: 2,
            hits: 2,
        };
        a.merge(&b);
        assert_eq!(
            a,
            HitStats {
                accesses: 12,
                hits: 7
            }
        );
    }

    #[test]
    fn jain_index_bounds_and_known_values() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_fairness(&[0.7, 0.7, 0.7, 0.7]), 1.0);
        // One of four clients gets everything → k/n = 1/4.
        assert!((jain_fairness(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Two equal shares of four → 1/2.
        assert!((jain_fairness(&[3.0, 3.0, 0.0, 0.0]) - 0.5).abs() < 1e-12);
        let skewed = jain_fairness(&[0.9, 0.8, 0.85, 0.2]);
        assert!(skewed > 0.25 && skewed < 1.0);
    }

    #[test]
    fn reset_clears() {
        let mut s = HitStats {
            accesses: 3,
            hits: 1,
        };
        s.reset();
        assert_eq!(s, HitStats::default());
    }
}
