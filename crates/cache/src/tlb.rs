//! Small fully-associative TLB with round-robin replacement.

use crate::HitStats;

/// The texture page-table TLB of paper §5.4.3: a small fully-associative
/// buffer of page-table entries, replaced round-robin. The paper studies
/// 1–16 entries and reports 36 %–92 % average hit rates.
///
/// Keys are opaque `u64`s (the engine uses the ⟨tid, L2⟩ page key).
///
/// ```
/// use mltc_cache::RoundRobinTlb;
/// let mut tlb = RoundRobinTlb::new(2);
/// assert!(!tlb.access(1));
/// assert!(tlb.access(1));
/// tlb.access(2);
/// tlb.access(3); // evicts 1 (round robin)
/// assert!(!tlb.access(1));
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobinTlb {
    entries: Vec<Option<u64>>,
    next: usize,
    stats: HitStats,
}

impl RoundRobinTlb {
    /// Creates a TLB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "TLB needs at least one entry");
        Self {
            entries: vec![None; entries],
            next: 0,
            stats: HitStats::default(),
        }
    }

    /// Capacity in entries.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Looks `key` up, installing it in the round-robin slot on a miss.
    /// Returns whether it hit.
    #[inline]
    pub fn access(&mut self, key: u64) -> bool {
        let hit = self.entries.contains(&Some(key));
        if !hit {
            self.entries[self.next] = Some(key);
            self.next = (self.next + 1) % self.entries.len();
        }
        self.stats.record(hit);
        hit
    }

    /// Removes `key` if present (page-table entry deallocated).
    pub fn invalidate(&mut self, key: u64) {
        for e in &mut self.entries {
            if *e == Some(key) {
                *e = None;
            }
        }
    }

    /// Empties the TLB.
    pub fn flush(&mut self) {
        self.entries.fill(None);
        self.next = 0;
    }

    /// Lifetime hit/miss counters.
    #[inline]
    pub fn stats(&self) -> HitStats {
        self.stats
    }

    /// Resets the counters (contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_entry_tlb_alternation_never_hits() {
        let mut tlb = RoundRobinTlb::new(1);
        for _ in 0..4 {
            assert!(!tlb.access(1));
            assert!(!tlb.access(2));
        }
        assert_eq!(tlb.stats().hit_rate(), 0.0);
    }

    #[test]
    fn repeated_key_hits() {
        let mut tlb = RoundRobinTlb::new(1);
        tlb.access(9);
        for _ in 0..5 {
            assert!(tlb.access(9));
        }
    }

    #[test]
    fn round_robin_evicts_oldest_slot() {
        let mut tlb = RoundRobinTlb::new(2);
        tlb.access(1); // slot 0
        tlb.access(2); // slot 1
        tlb.access(3); // slot 0, evicts 1
        assert!(tlb.access(2));
        assert!(!tlb.access(1));
    }

    #[test]
    fn hits_do_not_advance_pointer() {
        let mut tlb = RoundRobinTlb::new(2);
        tlb.access(1); // slot 0
        tlb.access(1); // hit
        tlb.access(2); // slot 1 — pointer must not have moved on the hit
        assert!(tlb.access(1), "key 1 must still be resident");
    }

    #[test]
    fn invalidate_removes() {
        let mut tlb = RoundRobinTlb::new(4);
        tlb.access(5);
        tlb.invalidate(5);
        assert!(!tlb.access(5));
    }

    #[test]
    fn flush_clears_all() {
        let mut tlb = RoundRobinTlb::new(4);
        for k in 0..4 {
            tlb.access(k);
        }
        tlb.flush();
        for k in 0..4 {
            assert!(!tlb.access(k));
        }
    }

    #[test]
    fn bigger_tlb_holds_bigger_working_set() {
        let mut small = RoundRobinTlb::new(2);
        let mut big = RoundRobinTlb::new(8);
        for _ in 0..10 {
            for k in 0..4 {
                small.access(k);
                big.access(k);
            }
        }
        assert!(big.stats().hit_rate() > small.stats().hit_rate());
    }
}
