//! N-way set-associative tag array with per-set LRU replacement.

use crate::HitStats;

/// Result of a [`SetAssocCache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the tag was already resident.
    pub hit: bool,
    /// On a miss that replaced a valid line, the evicted tag.
    pub evicted: Option<u64>,
}

/// An N-way set-associative cache holding `u64` tags, with true LRU
/// replacement within each set.
///
/// The caller computes the set index (hashing policy is part of the
/// architecture under study, not of the substrate): the paper's L1 texture
/// cache indexes with bit-interleaved block coordinates (Hakura's "6D
/// blocked representation"), which `mltc-core` implements on top of this
/// type.
///
/// Storage is two flat `u64` arrays (tags and LRU stamps) rather than an
/// array of line structs: the per-access probe loop touches contiguous
/// words with no `Option` or bool decoding. Stamp `0` doubles as the
/// invalid marker — `tick` pre-increments, so a resident line's stamp is
/// always ≥ 1, and the LRU victim scan's "prefer invalid, else oldest"
/// rule collapses to a plain minimum over the raw stamp words (preserving
/// the exact first-minimum victim order of the struct-based layout).
///
/// ```
/// use mltc_cache::SetAssocCache;
/// let mut c = SetAssocCache::new(2, 2);
/// c.access(1, 0);
/// c.access(2, 0);
/// c.access(1, 0);          // refresh tag 1
/// let r = c.access(3, 0);  // evicts LRU tag 2
/// assert_eq!(r.evicted, Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    tags: Vec<u64>,
    /// LRU timestamps; larger = more recently used, `0` = invalid line.
    stamps: Vec<u64>,
    sets: usize,
    ways: usize,
    tick: u64,
    stats: HitStats,
    /// Flat index of the most recently touched line (`usize::MAX` before
    /// the first access). Consecutive accesses to the same line — the
    /// common case for filter-tap streams — skip the way scan; the memo
    /// never changes outcomes, because a matching valid tag at this slot
    /// *is* the hit the scan would find, and the stamp update is the same.
    last_slot: usize,
}

impl SetAssocCache {
    /// Creates a cache of `sets` sets × `ways` ways, all lines invalid.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one line");
        Self {
            tags: vec![0; sets * ways],
            stamps: vec![0; sets * ways],
            sets,
            ways,
            tick: 0,
            stats: HitStats::default(),
            last_slot: usize::MAX,
        }
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total line count.
    #[inline]
    pub fn line_count(&self) -> usize {
        self.tags.len()
    }

    /// Looks up `tag` in set `set` and installs it on a miss (LRU victim).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `set >= sets()`.
    #[inline]
    pub fn access(&mut self, tag: u64, set: usize) -> AccessResult {
        debug_assert!(set < self.sets, "set index {set} out of range");
        self.tick += 1;
        let base = set * self.ways;

        // Same line as last time: the scan would find exactly this slot
        // (tags are unique within a set), so touch it and return.
        let ls = self.last_slot;
        if ls.wrapping_sub(base) < self.ways && self.stamps[ls] != 0 && self.tags[ls] == tag {
            self.stamps[ls] = self.tick;
            self.stats.record(true);
            return AccessResult {
                hit: true,
                evicted: None,
            };
        }

        let tags = &mut self.tags[base..base + self.ways];
        let stamps = &mut self.stamps[base..base + self.ways];
        let mut victim = 0usize;
        let mut victim_stamp = u64::MAX;
        for i in 0..tags.len() {
            let stamp = stamps[i];
            if stamp != 0 && tags[i] == tag {
                stamps[i] = self.tick;
                self.stats.record(true);
                self.last_slot = base + i;
                return AccessResult {
                    hit: true,
                    evicted: None,
                };
            }
            // Invalid lines carry stamp 0, so the plain minimum prefers
            // them, then the oldest resident line (first minimum wins).
            if stamp < victim_stamp {
                victim_stamp = stamp;
                victim = i;
            }
        }

        let evicted = (stamps[victim] != 0).then_some(tags[victim]);
        tags[victim] = tag;
        stamps[victim] = self.tick;
        self.stats.record(false);
        self.last_slot = base + victim;
        AccessResult {
            hit: false,
            evicted,
        }
    }

    /// Non-mutating lookup: is `tag` resident in `set`?
    pub fn probe(&self, tag: u64, set: usize) -> bool {
        let base = set * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .zip(&self.stamps[base..base + self.ways])
            .any(|(&t, &s)| s != 0 && t == tag)
    }

    /// Invalidates `tag` in `set` if resident, returning whether a line was
    /// dropped. Stats are untouched: this models undoing a speculative fill
    /// whose download failed, not a cache access.
    pub fn invalidate(&mut self, tag: u64, set: usize) -> bool {
        let base = set * self.ways;
        for i in base..base + self.ways {
            if self.stamps[i] != 0 && self.tags[i] == tag {
                self.stamps[i] = 0;
                return true;
            }
        }
        false
    }

    /// Invalidates every line whose tag satisfies `pred` (used when an L2
    /// victim's sub-blocks must be shot down from L1 in inclusive designs;
    /// the paper's design is non-inclusive, so this exists for ablations).
    pub fn invalidate_matching<F: Fn(u64) -> bool>(&mut self, pred: F) -> usize {
        let mut n = 0;
        for i in 0..self.tags.len() {
            if self.stamps[i] != 0 && pred(self.tags[i]) {
                self.stamps[i] = 0;
                n += 1;
            }
        }
        n
    }

    /// Invalidates everything.
    pub fn flush(&mut self) {
        self.stamps.fill(0);
    }

    /// Lifetime hit/miss counters.
    #[inline]
    pub fn stats(&self) -> HitStats {
        self.stats
    }

    /// Resets the hit/miss counters (contents untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(!c.access(7, 1).hit);
        assert!(c.access(7, 1).hit);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(1, 0);
        c.access(2, 0);
        c.access(1, 0); // 2 is now LRU
        let r = c.access(3, 0);
        assert_eq!(r.evicted, Some(2));
        assert!(c.probe(1, 0));
        assert!(c.probe(3, 0));
        assert!(!c.probe(2, 0));
    }

    #[test]
    fn invalid_lines_fill_before_eviction() {
        let mut c = SetAssocCache::new(1, 4);
        for t in 0..4 {
            assert_eq!(c.access(t, 0).evicted, None);
        }
        assert!(c.access(99, 0).evicted.is_some());
    }

    #[test]
    fn sets_are_independent() {
        let mut c = SetAssocCache::new(2, 1);
        c.access(1, 0);
        c.access(2, 1);
        assert!(c.probe(1, 0));
        assert!(c.probe(2, 1));
        assert!(!c.probe(1, 1));
    }

    #[test]
    fn same_tag_different_sets_are_distinct_lines() {
        let mut c = SetAssocCache::new(2, 1);
        c.access(5, 0);
        assert!(!c.access(5, 1).hit);
    }

    #[test]
    fn flush_invalidates_all() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(1, 0);
        c.access(2, 1);
        c.flush();
        assert!(!c.probe(1, 0));
        assert!(!c.probe(2, 1));
    }

    #[test]
    fn invalidate_matching_counts() {
        let mut c = SetAssocCache::new(1, 4);
        for t in 0..4 {
            c.access(t, 0);
        }
        let n = c.invalidate_matching(|t| t % 2 == 0);
        assert_eq!(n, 2);
        assert!(c.probe(1, 0));
        assert!(!c.probe(2, 0));
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_ways_rejected() {
        let _ = SetAssocCache::new(4, 0);
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut c = SetAssocCache::new(8, 2);
        // 16 distinct tags spread across 8 sets, 2 per set: fits exactly.
        for round in 0..4 {
            for i in 0..16u64 {
                let r = c.access(i, (i % 8) as usize);
                if round > 0 {
                    assert!(r.hit, "tag {i} should be resident in round {round}");
                }
            }
        }
    }
}
