//! A fast, deterministic hasher for hot block-set bookkeeping.
//!
//! The statistics passes in `mltc-trace` insert tens of millions of packed
//! block addresses into hash sets per run; `std`'s default SipHash is
//! needlessly slow (and randomly seeded) for that. This is the well-known
//! Firefox "Fx" multiply-rotate hash — not cryptographic, but fast and
//! deterministic, which also keeps experiment output bit-stable.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (FxHash).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one(v: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42), hash_one(42));
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        // Not guaranteed in general, but must hold for small neighbours.
        let hs: std::collections::HashSet<u64> = (0..1000).map(hash_one).collect();
        assert_eq!(hs.len(), 1000);
    }

    #[test]
    fn set_and_map_work() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }

    #[test]
    fn byte_writes_cover_remainder_path() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 4]);
        assert_ne!(a.finish(), b.finish());
    }
}
