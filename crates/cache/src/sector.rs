//! Sector-mapping presence bits.

/// Per-page sub-block presence bits for *sector mapping* (paper §5.2).
///
/// Rather than downloading a full L2 block on a miss, the architecture
/// downloads only the L1 sub-block that missed, leaving the remaining
/// sub-blocks vacant to be fetched on demand; one bit per sub-block records
/// which sectors are resident. A 32×32-texel L2 block of 4×4 L1 sub-blocks
/// needs 64 bits, the maximum supported.
///
/// ```
/// use mltc_cache::SectorBits;
/// let mut s = SectorBits::empty();
/// assert!(!s.get(5));
/// s.set(5);
/// assert!(s.get(5));
/// assert_eq!(s.count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SectorBits(u64);

impl SectorBits {
    /// All sectors vacant.
    #[inline]
    pub const fn empty() -> Self {
        Self(0)
    }

    /// All of the first `n` sectors resident.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn full(n: u32) -> Self {
        assert!(n <= 64);
        if n == 64 {
            Self(u64::MAX)
        } else {
            Self((1u64 << n) - 1)
        }
    }

    /// Is sector `i` resident?
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= 64`.
    #[inline]
    pub fn get(self, i: u16) -> bool {
        debug_assert!(i < 64);
        self.0 & (1u64 << i) != 0
    }

    /// Marks sector `i` resident.
    #[inline]
    pub fn set(&mut self, i: u16) {
        debug_assert!(i < 64);
        self.0 |= 1u64 << i;
    }

    /// Marks sector `i` vacant again (its host download failed, so the
    /// sector must not read as resident).
    #[inline]
    pub fn unset(&mut self, i: u16) {
        debug_assert!(i < 64);
        self.0 &= !(1u64 << i);
    }

    /// Clears all sectors (page reallocated to a new virtual block).
    #[inline]
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Number of resident sectors.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// True if no sector is resident.
    #[inline]
    pub fn is_clear(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let s = SectorBits::empty();
        assert!(s.is_clear());
        assert_eq!(s.count(), 0);
        for i in 0..64 {
            assert!(!s.get(i));
        }
    }

    #[test]
    fn set_get_independent_bits() {
        let mut s = SectorBits::empty();
        s.set(0);
        s.set(63);
        assert!(s.get(0) && s.get(63));
        assert!(!s.get(1) && !s.get(62));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn set_is_idempotent() {
        let mut s = SectorBits::empty();
        s.set(7);
        s.set(7);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut s = SectorBits::full(16);
        assert_eq!(s.count(), 16);
        s.clear();
        assert!(s.is_clear());
    }

    #[test]
    fn full_boundary_cases() {
        assert_eq!(SectorBits::full(0).count(), 0);
        assert_eq!(SectorBits::full(64).count(), 64);
        assert_eq!(SectorBits::full(4).count(), 4);
        assert!(!SectorBits::full(4).get(4));
    }
}
