//! The "clock" (second-chance) approximation of LRU.

/// Victim-search cost statistics for the clock algorithm.
///
/// The paper (§5.4.2) studies the variable cost of the clock's sweep for
/// "pesky" behaviour and reports that searching the active bits 16 at a time
/// always found a victim within 32 cycles on its workloads; these counters
/// let the harness reproduce that analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockStats {
    /// Victim searches performed.
    pub searches: u64,
    /// Total entries examined across all searches.
    pub entries_examined: u64,
    /// Longest single search, in entries examined.
    pub max_search: u64,
}

impl ClockStats {
    /// Mean entries examined per search (0 when no searches happened).
    pub fn mean_search(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.entries_examined as f64 / self.searches as f64
        }
    }

    /// Search cost in cycles if `width` active bits are examined per cycle
    /// (the paper evaluates `width = 16`).
    pub fn max_cycles(&self, width: u64) -> u64 {
        assert!(width > 0);
        self.max_search.div_ceil(width)
    }
}

#[derive(Debug, Clone, Copy)]
struct ClockEntry {
    active: bool,
    /// 1-based index into the owning structure's page table; 0 = free.
    t_index: u32,
}

/// The paper's Block Replacement List (`BRL[]`, §5.2): a circular FIFO with
/// one entry per physical L2 cache block, each holding a recent-`active` bit
/// and the page-table index `t_index` of the block's current owner.
///
/// When a victim is required, the clock hand marches around the list looking
/// for an entry with `active == false`, clearing the `active` bits it passes
/// over — the classic second-chance approximation of LRU.
///
/// ```
/// use mltc_cache::ClockList;
/// let mut brl = ClockList::new(2);
/// let a = brl.find_victim();
/// brl.assign(a, 10);
/// let b = brl.find_victim();
/// brl.assign(b, 20);
/// // Both blocks are active; the sweep clears them and takes the block the
/// // hand reaches first (`a`), giving `b` a second chance.
/// assert_eq!(brl.find_victim(), a);
/// ```
#[derive(Debug, Clone)]
pub struct ClockList {
    entries: Vec<ClockEntry>,
    hand: usize,
    stats: ClockStats,
}

impl ClockList {
    /// Creates a list of `blocks` free entries.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks > 0, "replacement list needs at least one block");
        Self {
            entries: vec![
                ClockEntry {
                    active: false,
                    t_index: 0
                };
                blocks
            ],
            hand: 0,
            stats: ClockStats::default(),
        }
    }

    /// Number of physical blocks tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false`: the constructor rejects empty lists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marks block `i` recently used (the accelerator sets the `active` bit
    /// on every reference to a physical block).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn touch(&mut self, i: usize) {
        self.entries[i].active = true;
    }

    /// The 1-based page-table index owning block `i`, or `None` if free.
    pub fn owner(&self, i: usize) -> Option<u32> {
        let t = self.entries[i].t_index;
        (t != 0).then_some(t)
    }

    /// Records that block `i` is now owned by 1-based page-table index
    /// `t_index`, and marks it active.
    ///
    /// # Panics
    ///
    /// Panics if `t_index` is zero (reserved for "free") or `i` is out of
    /// range.
    pub fn assign(&mut self, i: usize, t_index: u32) {
        assert!(t_index != 0, "t_index 0 is reserved for free blocks");
        self.entries[i] = ClockEntry {
            active: true,
            t_index,
        };
    }

    /// Releases block `i` (e.g. when its texture is deleted).
    pub fn release(&mut self, i: usize) {
        self.entries[i] = ClockEntry {
            active: false,
            t_index: 0,
        };
    }

    /// Sweeps the clock hand to the next inactive entry, clearing `active`
    /// bits along the way, and returns that block index. The hand advances
    /// past the victim, as in the paper's Appendix pseudo-code.
    ///
    /// The sweep always terminates: after one full revolution every bit has
    /// been cleared, so the entry under the hand is inactive.
    pub fn find_victim(&mut self) -> usize {
        let n = self.entries.len();
        let mut examined = 0u64;
        loop {
            examined += 1;
            let i = self.hand;
            if self.entries[i].active {
                self.entries[i].active = false;
                self.hand = (self.hand + 1) % n;
            } else {
                self.hand = (self.hand + 1) % n;
                self.stats.searches += 1;
                self.stats.entries_examined += examined;
                self.stats.max_search = self.stats.max_search.max(examined);
                return i;
            }
            debug_assert!(examined <= 2 * n as u64, "clock sweep failed to terminate");
        }
    }

    /// Current hand position (the entry the next victim search examines
    /// first). Exposed for conformance checking: a reference model must
    /// agree on the hand after every operation, or victim choices diverge.
    #[inline]
    pub fn hand(&self) -> usize {
        self.hand
    }

    /// Victim-search statistics.
    #[inline]
    pub fn stats(&self) -> ClockStats {
        self.stats
    }

    /// Resets search statistics (entries untouched).
    pub fn reset_stats(&mut self) {
        self.stats = ClockStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_free_blocks_first() {
        let mut brl = ClockList::new(3);
        let picks: Vec<usize> = (0..3)
            .map(|_| {
                let v = brl.find_victim();
                brl.assign(v, 1);
                v
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2]);
    }

    #[test]
    fn second_chance_spares_touched_blocks() {
        let mut brl = ClockList::new(3);
        for t in 1..=3 {
            let v = brl.find_victim();
            brl.assign(v, t);
        }
        // Touch 0 and 2; the sweep should clear them and take 1... but note
        // assign() also set active. One full sweep clears 0,1,2 then takes 0?
        // Work through it: all active. Hand at 0: clears 0, 1, 2, wraps,
        // takes 0. So the first victim after filling is block 0.
        assert_eq!(brl.find_victim(), 0);
        brl.assign(0, 4);
        // Now: 0 active, 1 and 2 inactive, hand at 1 -> victim 1.
        assert_eq!(brl.find_victim(), 1);
        brl.assign(1, 5);
        // Touch 2 so it survives the next sweep: hand at 2 (active: cleared),
        // 0 (active: cleared), 1 (active: cleared), 2 (now inactive) -> 2.
        brl.touch(2);
        assert_eq!(brl.find_victim(), 2);
    }

    #[test]
    fn owner_tracking() {
        let mut brl = ClockList::new(2);
        assert_eq!(brl.owner(0), None);
        brl.assign(0, 42);
        assert_eq!(brl.owner(0), Some(42));
        brl.release(0);
        assert_eq!(brl.owner(0), None);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_t_index_rejected() {
        let mut brl = ClockList::new(1);
        brl.assign(0, 0);
    }

    #[test]
    fn stats_track_search_cost() {
        let mut brl = ClockList::new(4);
        for t in 1..=4 {
            let v = brl.find_victim();
            brl.assign(v, t);
        }
        brl.reset_stats();
        // All 4 active: the next search examines all 4 entries + wraps to 0.
        let _ = brl.find_victim();
        let s = brl.stats();
        assert_eq!(s.searches, 1);
        assert_eq!(s.max_search, 5);
        assert_eq!(s.max_cycles(16), 1);
        assert!(s.mean_search() >= 1.0);
    }

    #[test]
    fn release_makes_block_immediately_claimable() {
        let mut brl = ClockList::new(2);
        for t in 1..=2 {
            let v = brl.find_victim();
            brl.assign(v, t);
        }
        brl.release(1);
        brl.touch(0);
        let v = brl.find_victim();
        assert_eq!(
            v, 1,
            "released block should be found (hand order permitting)"
        );
    }

    #[test]
    fn hand_advances_past_the_victim() {
        let mut brl = ClockList::new(3);
        assert_eq!(brl.hand(), 0);
        let v = brl.find_victim();
        assert_eq!(v, 0);
        assert_eq!(brl.hand(), 1, "hand moved past the victim");
        brl.assign(v, 1);
        let _ = brl.find_victim();
        assert_eq!(brl.hand(), 2);
    }

    #[test]
    fn single_block_list_recycles() {
        let mut brl = ClockList::new(1);
        let v = brl.find_victim();
        brl.assign(v, 1);
        assert_eq!(brl.find_victim(), 0);
    }
}
