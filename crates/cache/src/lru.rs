//! True-LRU replacement list (intrusive doubly-linked, O(1) operations).

/// A true least-recently-used replacement list over `blocks` physical
/// slots, with the same owner-tracking interface as [`crate::ClockList`] —
/// the exact-LRU alternative the paper's clock algorithm approximates
/// (§5.1: "We a priori expect LRU page replacement to be a good choice …
/// we have chosen to study L2 texture caching with LRU approximated by the
/// 'clock' algorithm").
///
/// Head = least recently used, tail = most recently used; all operations
/// are O(1) via an intrusive doubly-linked list.
///
/// ```
/// use mltc_cache::LruList;
/// let mut lru = LruList::new(2);
/// let a = lru.find_victim();
/// lru.assign(a, 10);
/// let b = lru.find_victim();
/// lru.assign(b, 20);
/// lru.touch(a);
/// assert_eq!(lru.find_victim(), b, "b is now least recent");
/// ```
#[derive(Debug, Clone)]
pub struct LruList {
    prev: Vec<u32>,
    next: Vec<u32>,
    owners: Vec<u32>, // 0 = free
    head: u32,
    tail: u32,
}

const NIL: u32 = u32::MAX;

impl LruList {
    /// Creates a list of `blocks` free slots.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks > 0, "replacement list needs at least one block");
        let n = blocks as u32;
        let prev = (0..n).map(|i| if i == 0 { NIL } else { i - 1 }).collect();
        let next = (0..n)
            .map(|i| if i + 1 == n { NIL } else { i + 1 })
            .collect();
        Self {
            prev,
            next,
            owners: vec![0; blocks],
            head: 0,
            tail: n - 1,
        }
    }

    /// Number of slots tracked.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Always `false`: the constructor rejects empty lists.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }

    fn unlink(&mut self, b: u32) {
        let (p, n) = (self.prev[b as usize], self.next[b as usize]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    fn push_tail(&mut self, b: u32) {
        self.prev[b as usize] = self.tail;
        self.next[b as usize] = NIL;
        if self.tail != NIL {
            self.next[self.tail as usize] = b;
        } else {
            self.head = b;
        }
        self.tail = b;
    }

    fn push_head(&mut self, b: u32) {
        self.next[b as usize] = self.head;
        self.prev[b as usize] = NIL;
        if self.head != NIL {
            self.prev[self.head as usize] = b;
        } else {
            self.tail = b;
        }
        self.head = b;
    }

    /// Marks slot `b` most recently used.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn touch(&mut self, b: usize) {
        assert!(b < self.owners.len());
        let b = b as u32;
        if self.tail != b {
            self.unlink(b);
            self.push_tail(b);
        }
    }

    /// Returns the least recently used slot (does not advance state; callers
    /// follow up with [`LruList::assign`]).
    pub fn find_victim(&mut self) -> usize {
        self.head as usize
    }

    /// Records that slot `b` is now owned by the 1-based index `t_index`
    /// and marks it most recently used.
    ///
    /// # Panics
    ///
    /// Panics if `t_index` is zero (reserved for "free").
    pub fn assign(&mut self, b: usize, t_index: u32) {
        assert!(t_index != 0, "t_index 0 is reserved for free blocks");
        self.owners[b] = t_index;
        self.touch(b);
    }

    /// The 1-based owner of slot `b`, or `None` if free.
    pub fn owner(&self, b: usize) -> Option<u32> {
        (self.owners[b] != 0).then_some(self.owners[b])
    }

    /// Frees slot `b` and moves it to the LRU position so it is reused
    /// before any occupied slot is evicted.
    pub fn release(&mut self, b: usize) {
        self.owners[b] = 0;
        let b = b as u32;
        if self.head != b {
            self.unlink(b);
            self.push_head(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_free_slots_in_order() {
        let mut lru = LruList::new(3);
        let picks: Vec<usize> = (0..3)
            .map(|i| {
                let v = lru.find_victim();
                lru.assign(v, i + 1);
                v
            })
            .collect();
        assert_eq!(picks, vec![0, 1, 2]);
    }

    #[test]
    fn evicts_least_recent() {
        let mut lru = LruList::new(2);
        lru.assign(0, 1);
        lru.assign(1, 2);
        lru.touch(0);
        assert_eq!(lru.find_victim(), 1);
    }

    #[test]
    fn touch_tail_is_noop() {
        let mut lru = LruList::new(2);
        lru.assign(0, 1);
        lru.assign(1, 2);
        lru.touch(1); // already MRU
        assert_eq!(lru.find_victim(), 0);
    }

    #[test]
    fn release_moves_to_head() {
        let mut lru = LruList::new(3);
        for i in 0..3 {
            lru.assign(i, (i + 1) as u32);
        }
        lru.release(2);
        assert_eq!(lru.find_victim(), 2, "freed slot reused before evictions");
        assert_eq!(lru.owner(2), None);
    }

    #[test]
    fn owner_roundtrip() {
        let mut lru = LruList::new(2);
        assert_eq!(lru.owner(0), None);
        lru.assign(0, 42);
        assert_eq!(lru.owner(0), Some(42));
    }

    #[test]
    fn single_slot_cycles() {
        let mut lru = LruList::new(1);
        lru.assign(0, 1);
        assert_eq!(lru.find_victim(), 0);
        lru.assign(0, 2);
        assert_eq!(lru.owner(0), Some(2));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_slots_rejected() {
        let _ = LruList::new(0);
    }

    #[test]
    fn exhaustive_order_matches_reference() {
        // Random-ish touch sequence vs a VecDeque reference model.
        let n = 5;
        let mut lru = LruList::new(n);
        for i in 0..n {
            lru.assign(i, (i + 1) as u32);
        }
        let mut reference: std::collections::VecDeque<usize> = (0..n).collect();
        let seq = [3usize, 0, 4, 3, 1, 2, 2, 0, 4, 1, 3];
        for &b in &seq {
            lru.touch(b);
            reference.retain(|&x| x != b);
            reference.push_back(b);
        }
        assert_eq!(lru.find_victim(), reference[0]);
    }
}
