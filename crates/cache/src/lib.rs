//! Generic cache substrate for the texture-caching study.
//!
//! `mltc-cache` provides the reusable hardware-ish building blocks that
//! `mltc-core` assembles into the paper's L1/L2 texture caching
//! architecture:
//!
//! * [`SetAssocCache`] — an N-way set-associative tag array with per-set LRU
//!   (the paper's 2-way set-associative L1 texture cache, §2.3);
//! * [`ClockList`] — the circular FIFO of `{active, t_index}` entries that
//!   implements the "clock" approximation of LRU for L2 block replacement
//!   (the paper's Block Replacement List, §5.2);
//! * [`LruList`] — the true-LRU alternative that clock approximates (used
//!   by the replacement-policy ablation);
//! * [`SectorBits`] — per-page sub-block presence bits for *sector mapping*
//!   (§5.2, following the IBM System/360 Model 85);
//! * [`RoundRobinTlb`] — the small translation look-aside buffer with
//!   round-robin replacement studied in §5.4.3;
//! * [`HitStats`] — hit/miss accounting shared by all of the above;
//! * [`fxhash`] — a fast deterministic hasher for the block-set statistics
//!   in `mltc-trace`.
//!
//! Everything here is policy-parameterised and texture-agnostic; the texture
//! semantics (virtual block addresses, page tables, block download costs)
//! live in `mltc-core`.
//!
//! # Example
//!
//! ```
//! use mltc_cache::SetAssocCache;
//!
//! let mut l1 = SetAssocCache::new(64, 2); // 64 sets, 2-way
//! assert!(!l1.access(0xdead, 3).hit);     // cold miss
//! assert!(l1.access(0xdead, 3).hit);      // now resident
//! ```

pub mod fxhash;

mod clock;
mod lru;
mod sector;
mod setassoc;
mod stats;
mod tlb;

pub use clock::{ClockList, ClockStats};
pub use lru::LruList;
pub use sector::SectorBits;
pub use setassoc::{AccessResult, SetAssocCache};
pub use stats::{jain_fairness, HitStats};
pub use tlb::RoundRobinTlb;
