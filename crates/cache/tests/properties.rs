//! Property-based tests: the cache substrate vs simple reference models.

use mltc_cache::{ClockList, RoundRobinTlb, SectorBits, SetAssocCache};
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference model of one set with true LRU.
#[derive(Default)]
struct LruSetModel {
    ways: usize,
    /// Front = LRU, back = MRU.
    lines: VecDeque<u64>,
}

impl LruSetModel {
    fn access(&mut self, tag: u64) -> bool {
        if let Some(pos) = self.lines.iter().position(|&t| t == tag) {
            self.lines.remove(pos);
            self.lines.push_back(tag);
            true
        } else {
            if self.lines.len() == self.ways {
                self.lines.pop_front();
            }
            self.lines.push_back(tag);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The set-associative cache behaves exactly like a per-set true-LRU
    /// reference model on arbitrary access streams.
    #[test]
    fn setassoc_matches_lru_model(
        sets in 1usize..8,
        ways in 1usize..5,
        stream in proptest::collection::vec((0u64..32, 0usize..8), 1..300),
    ) {
        let mut cache = SetAssocCache::new(sets, ways);
        let mut models: Vec<LruSetModel> =
            (0..sets).map(|_| LruSetModel { ways, lines: VecDeque::new() }).collect();
        for (tag, set_raw) in stream {
            let set = set_raw % sets;
            let got = cache.access(tag, set).hit;
            let want = models[set].access(tag);
            prop_assert_eq!(got, want, "tag {} set {}", tag, set);
        }
    }

    /// Hits + misses always equals accesses, and probe agrees with residency
    /// after the access stream.
    #[test]
    fn setassoc_counters_and_probe(
        stream in proptest::collection::vec(0u64..16, 1..200),
    ) {
        let mut cache = SetAssocCache::new(4, 2);
        let mut model: Vec<LruSetModel> =
            (0..4).map(|_| LruSetModel { ways: 2, lines: VecDeque::new() }).collect();
        for tag in &stream {
            let set = (*tag % 4) as usize;
            cache.access(*tag, set);
            model[set].access(*tag);
        }
        let s = cache.stats();
        prop_assert_eq!(s.accesses, stream.len() as u64);
        prop_assert_eq!(s.hits + s.misses(), s.accesses);
        for tag in 0u64..16 {
            let set = (tag % 4) as usize;
            prop_assert_eq!(cache.probe(tag, set), model[set].lines.contains(&tag));
        }
    }

    /// The clock list never hands out an out-of-range victim, and a victim
    /// freshly assigned and touched is never the immediate next victim when
    /// alternatives exist.
    #[test]
    fn clock_victims_in_range(blocks in 2usize..32, ops in proptest::collection::vec(0u8..4, 1..200)) {
        let mut clock = ClockList::new(blocks);
        let mut last: Option<usize> = None;
        for op in ops {
            match op {
                0 | 1 => {
                    let v = clock.find_victim();
                    prop_assert!(v < blocks);
                    clock.assign(v, (v + 1) as u32);
                    last = Some(v);
                }
                2 => {
                    if let Some(b) = last {
                        clock.touch(b);
                    }
                }
                _ => {
                    if let Some(b) = last {
                        clock.release(b);
                        prop_assert_eq!(clock.owner(b), None);
                        last = None;
                    }
                }
            }
        }
        // Accounting: every search examined at least one entry.
        let s = clock.stats();
        prop_assert!(s.entries_examined >= s.searches);
        prop_assert!(s.max_search <= 2 * blocks as u64);
    }

    /// Clock owner bookkeeping: after assigning distinct owners, each block
    /// reports exactly the owner it was given.
    #[test]
    fn clock_owner_roundtrip(blocks in 1usize..16) {
        let mut clock = ClockList::new(blocks);
        for i in 0..blocks {
            let v = clock.find_victim();
            clock.assign(v, (i + 100) as u32);
        }
        let mut owners: Vec<u32> = (0..blocks).filter_map(|b| clock.owner(b)).collect();
        owners.sort_unstable();
        let expect: Vec<u32> = (100..100 + blocks as u32).collect();
        prop_assert_eq!(owners, expect);
    }

    /// The TLB matches a reference round-robin model exactly.
    #[test]
    fn tlb_matches_reference(
        entries in 1usize..8,
        stream in proptest::collection::vec(0u64..12, 1..300),
    ) {
        let mut tlb = RoundRobinTlb::new(entries);
        let mut slots: Vec<Option<u64>> = vec![None; entries];
        let mut next = 0usize;
        for key in stream {
            let want = slots.contains(&Some(key));
            if !want {
                slots[next] = Some(key);
                next = (next + 1) % entries;
            }
            prop_assert_eq!(tlb.access(key), want, "key {}", key);
        }
    }

    /// Sector bits: set/get/count agree with a reference u128 bitset.
    #[test]
    fn sector_bits_match_reference(ops in proptest::collection::vec(0u16..64, 0..100)) {
        let mut s = SectorBits::empty();
        let mut reference = [false; 64];
        for bit in ops {
            s.set(bit);
            reference[bit as usize] = true;
        }
        for bit in 0..64u16 {
            prop_assert_eq!(s.get(bit), reference[bit as usize]);
        }
        prop_assert_eq!(s.count() as usize, reference.iter().filter(|&&b| b).count());
    }
}
